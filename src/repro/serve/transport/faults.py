"""Deterministic fault injection for the socket transport.

Chaos testing the transport needs the same property the litho
:class:`~repro.litho.faults.FaultPlan` gives the retry layer: faults at
*planned, reproducible* points rather than random ones, so a test can
assert exactly which frame dies and exactly how the client recovers.

A :class:`TransportFaultPlan` maps global **frame-send indices** (the
transport writes each frame with a single ``sendall``, so frame index
== send call index on that side) onto one of five failure kinds:

``drop``
    swallow the frame silently — the peer waits and hits its read
    deadline (:class:`~repro.serve.transport.ReadTimeout`).
``delay``
    sleep ``delay_s`` before sending — long enough to push the peer
    past a short deadline, or to model a slow link.
``truncate``
    send only the first half of the frame, then close the connection —
    the peer sees EOF mid-frame
    (:class:`~repro.serve.transport.ConnectionLost`).
``garbage``
    flip seeded-deterministic bytes inside the frame — the CRC32 check
    rejects it (:class:`~repro.serve.transport.FrameCorrupt`).
``disconnect``
    close the connection instead of sending anything
    (:class:`~repro.serve.transport.ConnectionLost`).

A :class:`FaultInjector` owns one plan plus the thread-safe frame
counter, and wraps sockets via :meth:`FaultInjector.wrap` — pass it as
``wrap_socket=`` to either :class:`~repro.serve.transport.DetectionClient`
(faults on the request path) or
:class:`~repro.serve.transport.SocketTransport` (faults on the response
path).  The counter is shared across every wrapped socket, so the plan
indexes one global frame sequence even across reconnects.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass

import numpy as np

from ...analysis.concurrency import TrackedLock, guarded_by

__all__ = ["FAULT_KINDS", "FaultInjector", "FaultySocket", "TransportFaultPlan"]

FAULT_KINDS = ("drop", "delay", "truncate", "garbage", "disconnect")


@dataclass(frozen=True)
class TransportFaultPlan:
    """Deterministic schedule of transport faults by frame-send index."""

    #: frame indices swallowed without sending
    drops: frozenset[int] = frozenset()
    #: frame indices delayed by ``delay_s`` before sending
    delays: frozenset[int] = frozenset()
    #: frame indices cut off halfway (then the connection is closed)
    truncates: frozenset[int] = frozenset()
    #: frame indices with seeded byte corruption (CRC32 will reject)
    garbage: frozenset[int] = frozenset()
    #: frame indices replaced by an abrupt connection close
    disconnects: frozenset[int] = frozenset()
    #: sleep applied to ``delays`` indices, in seconds
    delay_s: float = 0.2
    #: base seed of the garbage corruption (per-frame offset added)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "drops", frozenset(self.drops))
        object.__setattr__(self, "delays", frozenset(self.delays))
        object.__setattr__(self, "truncates", frozenset(self.truncates))
        object.__setattr__(self, "garbage", frozenset(self.garbage))
        object.__setattr__(self, "disconnects", frozenset(self.disconnects))
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        overlaps = (
            (self.drops | self.truncates | self.disconnects)
            & (self.delays | self.garbage)
        )
        ambiguous = (
            (self.drops & self.truncates)
            | (self.drops & self.disconnects)
            | (self.truncates & self.disconnects)
            | overlaps
        )
        if ambiguous:
            raise ValueError(
                f"frame indices {sorted(ambiguous)} appear under more "
                "than one fault kind"
            )

    @classmethod
    def none(cls) -> "TransportFaultPlan":
        return cls()

    @classmethod
    def drop_at(cls, *indices: int) -> "TransportFaultPlan":
        return cls(drops=frozenset(indices))

    @classmethod
    def delay_at(cls, *indices: int, delay_s: float = 0.2) -> "TransportFaultPlan":
        return cls(delays=frozenset(indices), delay_s=delay_s)

    @classmethod
    def truncate_at(cls, *indices: int) -> "TransportFaultPlan":
        return cls(truncates=frozenset(indices))

    @classmethod
    def garbage_at(cls, *indices: int, seed: int = 0) -> "TransportFaultPlan":
        return cls(garbage=frozenset(indices), seed=seed)

    @classmethod
    def disconnect_at(cls, *indices: int) -> "TransportFaultPlan":
        return cls(disconnects=frozenset(indices))

    def kind_at(self, index: int) -> str | None:
        """The fault kind scheduled for frame ``index`` (or ``None``)."""
        if index in self.drops:
            return "drop"
        if index in self.delays:
            return "delay"
        if index in self.truncates:
            return "truncate"
        if index in self.garbage:
            return "garbage"
        if index in self.disconnects:
            return "disconnect"
        return None

    @property
    def n_faults(self) -> int:
        return (
            len(self.drops) + len(self.delays) + len(self.truncates)
            + len(self.garbage) + len(self.disconnects)
        )


class FaultInjector:
    """One plan + one global frame counter, shared across sockets.

    Handler and client threads send concurrently, so the counter and
    the per-kind tallies live under a tracked lock; the fault *action*
    (sleeping, sending, closing) happens outside it.
    """

    _sent = guarded_by("_lock")
    _tally = guarded_by("_lock")

    def __init__(self, plan: TransportFaultPlan) -> None:
        self.plan = plan
        self._lock = TrackedLock("fault-injector")
        with self._lock:
            self._sent = 0  #: guarded_by: _lock
            self._tally = dict.fromkeys(FAULT_KINDS, 0)  #: guarded_by: _lock

    def next_fault(self) -> tuple[int, str | None]:
        """Claim the next frame index and its scheduled fault kind."""
        with self._lock:
            index = self._sent
            self._sent += 1
            kind = self.plan.kind_at(index)
            if kind is not None:
                self._tally[kind] += 1
        return index, kind

    def counts(self) -> dict:
        """Frames sent so far and faults injected, by kind."""
        with self._lock:
            return {"frames": self._sent, **self._tally}

    def wrap(self, sock: socket.socket) -> "FaultySocket":
        return FaultySocket(sock, self)


class FaultySocket:
    """Socket wrapper whose ``sendall`` applies the planned fault for
    each outgoing frame (the transport writes one frame per ``sendall``,
    so the injector's frame counter lines up exactly)."""

    def __init__(self, sock: socket.socket, injector: FaultInjector) -> None:
        self._sock = sock
        self._injector = injector

    def sendall(self, data: bytes) -> None:
        index, kind = self._injector.next_fault()
        if kind == "drop":
            return
        if kind == "disconnect":
            self._sock.close()
            raise OSError("fault injection: disconnect before send")
        if kind == "truncate":
            self._sock.sendall(data[: max(1, len(data) // 2)])
            self._sock.close()
            raise OSError("fault injection: truncated mid-frame")
        if kind == "delay":
            time.sleep(self._injector.plan.delay_s)
        elif kind == "garbage":
            data = self._corrupt(data, index)
        self._sock.sendall(data)

    def _corrupt(self, data: bytes, index: int) -> bytes:
        """Flip a few bytes deterministically (seeded per frame index,
        so re-running the same plan corrupts identically)."""
        rng = np.random.default_rng(self._injector.plan.seed + index)
        corrupted = bytearray(data)
        n_flips = min(4, len(corrupted))
        for position in rng.integers(0, len(corrupted), size=n_flips):
            corrupted[int(position)] ^= 0xA5
        return bytes(corrupted)

    # ------------------------------------------------------------------
    # transparent delegation for everything the transport touches
    # ------------------------------------------------------------------
    def recv(self, n: int) -> bytes:
        return self._sock.recv(n)

    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    def shutdown(self, how: int) -> None:
        self._sock.shutdown(how)

    def close(self) -> None:
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()

    def getpeername(self):
        return self._sock.getpeername()

    def getsockname(self):
        return self._sock.getsockname()
