"""Fault-tolerant client for the framed detection transport.

:class:`DetectionClient` gives callers the same call shape as the
in-process :meth:`DetectionServer.submit` — clips in,
:class:`~repro.serve.ServeResult` out — with the partial-failure
handling a network boundary demands:

* **connection pooling** — sockets are checked out per request and
  returned after a clean exchange; any socket that saw a transport
  error is discarded (a desynced byte stream can never be reused).
* **end-to-end deadline** — every call runs under one monotonic
  deadline; the *remaining* budget rides each request frame's
  ``deadline_ms`` header and bounds the server-side batch wait, so
  client and server always agree on how long the request may live.
* **bounded retry with seeded jitter** — retryable failures (see
  :mod:`repro.serve.transport.errors`) reconnect and retry under
  exponential backoff; scoring is a pure function of the clips, so a
  retried result is bit-identical to an uninterrupted one.  Backoff
  jitter comes from a seeded generator (R001: reproducible runs).
* **circuit breaking** — ``breaker_threshold`` consecutive retryable
  failures open the circuit; calls then fail fast with
  :class:`CircuitOpenError` until ``breaker_cooldown_s`` elapses, after
  which one half-open probe decides re-close vs re-open.  Transitions
  emit typed ``serve_circuit_*`` events.

Lock discipline (PR 8): pool, request counter and breaker state are
``guarded_by`` tracked locks; socket I/O, sleeps and event emission
happen strictly outside the critical sections.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass

import numpy as np

from ...analysis.concurrency import TrackedLock, guarded_by
from ...analysis.interleave import trace_point
from ..server import ServeResult
from . import frames
from .errors import (
    CircuitOpenError,
    ConnectionLost,
    DeadlineExceeded,
    FrameCorrupt,
    ProtocolMismatch,
    RemoteClosed,
    RemoteError,
    RemoteOverloaded,
    RemoteTimeout,
    RetryableTransportError,
    TransportError,
)

__all__ = ["CircuitBreaker", "ClientConfig", "DetectionClient"]

#: wire error code -> exception type (unknown codes fall back terminal)
_CODE_MAP = {
    "admission": RemoteOverloaded,
    "overloaded": RemoteOverloaded,
    "timeout": RemoteTimeout,
    "corrupt": FrameCorrupt,  # the server saw *our* frame corrupted
    "closed": RemoteClosed,
    "version": ProtocolMismatch,
    "bad_request": RemoteError,
    "internal": RemoteError,
}


@dataclass(frozen=True)
class ClientConfig:
    """Connection, retry and breaker policy of one client."""

    host: str = "127.0.0.1"
    port: int = 0
    #: default end-to-end deadline per call, seconds
    timeout_s: float = 30.0
    #: TCP connect deadline, seconds
    connect_timeout_s: float = 5.0
    #: total attempts per call (1 = no retries)
    retries: int = 5
    #: first backoff sleep, seconds (doubles per attempt)
    backoff_base_s: float = 0.05
    #: backoff ceiling, seconds
    backoff_max_s: float = 2.0
    #: idle sockets kept for reuse
    pool_size: int = 4
    #: consecutive retryable failures that open the circuit
    breaker_threshold: int = 5
    #: seconds the circuit stays open before one half-open probe
    breaker_cooldown_s: float = 1.0
    #: seed of the backoff-jitter generator
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.port <= 65535:
            raise ValueError(f"port must be in [1, 65535], got {self.port}")
        if self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.connect_timeout_s <= 0:
            raise ValueError(
                f"connect_timeout_s must be positive, got "
                f"{self.connect_timeout_s}"
            )
        if self.retries <= 0:
            raise ValueError(f"retries must be positive, got {self.retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.pool_size <= 0:
            raise ValueError(
                f"pool_size must be positive, got {self.pool_size}"
            )
        if self.breaker_threshold <= 0:
            raise ValueError(
                f"breaker_threshold must be positive, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ValueError(
                f"breaker_cooldown_s must be positive, got "
                f"{self.breaker_cooldown_s}"
            )


class CircuitBreaker:
    """closed → open → half-open failure gate with typed events.

    State lives under a tracked lock; events are collected inside the
    critical section and emitted after it (the bus must never be
    reached while a client-side lock is held).
    """

    _state = guarded_by("_lock")
    _failures = guarded_by("_lock")
    _opened_at = guarded_by("_lock")

    def __init__(self, threshold: int, cooldown_s: float, bus=None) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.bus = bus
        self._lock = TrackedLock("circuit-breaker")
        with self._lock:
            self._state = "closed"  #: guarded_by: _lock
            self._failures = 0  #: guarded_by: _lock
            self._opened_at = 0.0  #: guarded_by: _lock

    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Gate one attempt; flips open → half-open after the cooldown."""
        trace_point("breaker:allow")
        event = None
        with self._lock:
            if self._state == "open":
                waited = time.monotonic() - self._opened_at
                if waited < self.cooldown_s:
                    allowed = False
                else:
                    self._state = "half_open"
                    event = ("serve_circuit_half_open", {
                        "waited_s": waited,
                    })
                    allowed = True
            else:
                allowed = True
        self._emit(event)
        return allowed

    def record_success(self) -> None:
        trace_point("breaker:success")
        event = None
        with self._lock:
            if self._state != "closed":
                event = ("serve_circuit_closed", {
                    "recovered_from": self._state,
                })
            self._state = "closed"
            self._failures = 0
        self._emit(event)

    def record_failure(self, error: str) -> None:
        """One retryable failure; a half-open probe failing (or the
        threshold filling) re-opens the circuit."""
        trace_point("breaker:failure")
        event = None
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == "half_open"
                or (self._state == "closed"
                    and self._failures >= self.threshold)
            )
            if tripped:
                self._state = "open"
                self._opened_at = time.monotonic()
                event = ("serve_circuit_open", {
                    "failures": self._failures,
                    "threshold": self.threshold,
                    "error": error,
                })
        self._emit(event)

    def _emit(self, event: tuple[str, dict] | None) -> None:
        if event is not None and self.bus is not None:
            kind, payload = event
            self.bus.emit(kind, **payload)


class DetectionClient:
    """Pooled, retrying, circuit-breaking client of one transport
    endpoint.  Thread-safe: concurrent callers each check out their own
    socket."""

    _pool = guarded_by("_lock")
    _next_id = guarded_by("_lock")
    _closed = guarded_by("_lock")

    def __init__(
        self,
        config: ClientConfig,
        bus=None,
        wrap_socket=None,
    ) -> None:
        self.config = config
        self.bus = bus
        self.wrap_socket = wrap_socket
        self.breaker = CircuitBreaker(
            config.breaker_threshold, config.breaker_cooldown_s, bus=bus
        )
        self._lock = TrackedLock("detection-client")
        with self._lock:
            self._pool = []  #: guarded_by: _lock
            self._next_id = 1  #: guarded_by: _lock
            self._closed = False  #: guarded_by: _lock
        # jitter only — never used for anything result-affecting
        self._rng = np.random.default_rng(config.seed)
        self._rng_lock = TrackedLock("client-jitter-rng")

    # ------------------------------------------------------------------
    # public calls
    # ------------------------------------------------------------------
    def submit(
        self,
        clips,
        model: str | None = None,
        want_labels: bool = False,
        timeout: float | None = None,
    ) -> ServeResult:
        """Score ``clips`` remotely; retries transparently on retryable
        faults and returns a result bit-identical to an uninterrupted
        call (scoring is pure per request)."""
        payload = frames.encode_clips(list(clips), model, want_labels)
        return self._call(
            frames.T_REQUEST, payload, self._parse_result, timeout
        )

    def health(self, timeout: float | None = None) -> dict:
        """The endpoint's liveness/drain status and registered models."""
        return self._call(frames.T_HEALTH, b"", self._parse_json, timeout)

    def stats(self, timeout: float | None = None) -> dict:
        """Transport + server counters and the supervisor GuardReport."""
        return self._call(frames.T_STATS, b"", self._parse_json, timeout)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pooled = list(self._pool)
            self._pool = []
        for sock in pooled:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "DetectionClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the retry loop
    # ------------------------------------------------------------------
    def _call(self, ftype: int, payload: bytes, parse, timeout):
        cfg = self.config
        budget = cfg.timeout_s if timeout is None else float(timeout)
        if budget <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        deadline = time.monotonic() + budget
        last_error: Exception | None = None
        for attempt in range(1, cfg.retries + 1):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"deadline of {budget:.3f}s elapsed after "
                    f"{attempt - 1} attempts"
                ) from last_error
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open (cooling down "
                    f"{self.config.breaker_cooldown_s}s)"
                ) from last_error
            # split the remaining budget over the attempts still
            # available, so a silently dropped frame costs one slice
            # of the deadline instead of all of it
            attempts_left = cfg.retries - attempt + 1
            slice_s = max(remaining / attempts_left, min(remaining, 0.05))
            try:
                result = self._roundtrip(ftype, payload, parse, slice_s)
            except RetryableTransportError as exc:
                self.breaker.record_failure(type(exc).__name__)
                last_error = exc
                if attempt >= cfg.retries:
                    raise
                self._backoff(attempt, deadline, exc)
                continue
            except TransportError:
                # terminal: retrying cannot change the outcome
                raise
            self.breaker.record_success()
            return result
        raise DeadlineExceeded(  # pragma: no cover - loop always exits
            f"retries exhausted after {cfg.retries} attempts"
        ) from last_error

    def _backoff(self, attempt: int, deadline: float, exc: Exception) -> None:
        cfg = self.config
        with self._rng_lock:
            jitter = 0.5 + float(self._rng.random())
        sleep_s = min(
            cfg.backoff_base_s * 2.0 ** (attempt - 1), cfg.backoff_max_s
        ) * jitter
        sleep_s = min(sleep_s, max(0.0, deadline - time.monotonic()))
        if self.bus is not None:
            self.bus.emit(
                "transport_retry",
                attempt=attempt,
                error=type(exc).__name__,
                detail=str(exc),
                sleep_s=sleep_s,
            )
        if sleep_s > 0:
            time.sleep(sleep_s)

    # ------------------------------------------------------------------
    # one exchange on one socket
    # ------------------------------------------------------------------
    def _roundtrip(self, ftype: int, payload: bytes, parse, budget_s: float):
        with self._lock:
            if self._closed:
                raise RemoteClosed("client is closed")
            rid = self._next_id
            self._next_id += 1
        sock = self._checkout(budget_s)
        try:
            sock.settimeout(budget_s)
            frames.write_frame(
                sock, ftype, rid, payload,
                deadline_ms=int(budget_s * 1000),
            )
            while True:
                frame = frames.read_frame(sock)
                if frame.request_id in (rid, 0):
                    break
                # stale reply from an earlier abandoned request on a
                # pooled socket — skip it, ours is still in flight
        except BaseException:
            self._discard(sock)
            raise
        if frame.ftype == frames.T_ERROR:
            code, detail, _retryable = frames.decode_error(frame.payload)
            if code in ("admission", "timeout"):
                # the server keeps the connection after these, and the
                # error frame arrived intact — the socket is poolable
                self._checkin(sock)
            else:
                # corrupt/version/closed/overloaded: the server drops
                # the connection after reporting
                self._discard(sock)
            error_type = _CODE_MAP.get(code, RemoteError)
            raise error_type(f"server: {detail or code}")
        try:
            result = parse(frame)
        except BaseException:
            self._discard(sock)
            raise
        self._checkin(sock)
        return result

    @staticmethod
    def _parse_result(frame: frames.Frame) -> ServeResult:
        if frame.ftype != frames.T_RESPONSE:
            raise FrameCorrupt(
                f"expected response frame, got type {frame.ftype}"
            )
        return frames.decode_result(frame.payload)

    @staticmethod
    def _parse_json(frame: frames.Frame) -> dict:
        if frame.ftype not in (frames.T_HEALTH_REPLY, frames.T_STATS_REPLY):
            raise FrameCorrupt(
                f"expected health/stats reply, got type {frame.ftype}"
            )
        return frames.decode_json(frame.payload)

    # ------------------------------------------------------------------
    # connection pool
    # ------------------------------------------------------------------
    def _checkout(self, budget_s: float):
        trace_point("pool:checkout")
        with self._lock:
            sock = self._pool.pop() if self._pool else None
        if sock is not None:
            return sock
        cfg = self.config
        raw = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            raw.settimeout(min(cfg.connect_timeout_s, budget_s))
            raw.connect((cfg.host, cfg.port))
        except socket.timeout as exc:
            raw.close()
            raise ConnectionLost(
                f"connect to {cfg.host}:{cfg.port} timed out"
            ) from exc
        except OSError as exc:
            raw.close()
            raise ConnectionLost(
                f"connect to {cfg.host}:{cfg.port} failed: {exc}"
            ) from exc
        return self.wrap_socket(raw) if self.wrap_socket else raw

    def _checkin(self, sock) -> None:
        trace_point("pool:checkin")
        with self._lock:
            keep = not self._closed and len(self._pool) < self.config.pool_size
            if keep:
                self._pool.append(sock)
        if not keep:
            try:
                sock.close()
            except OSError:
                pass

    @staticmethod
    def _discard(sock) -> None:
        try:
            sock.close()
        except OSError:
            pass
