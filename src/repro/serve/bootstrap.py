"""Shared quick-train bootstrap for the serving entry points.

The ``repro serve`` CLI and the transport tests both need the same
thing before a daemon can serve: clips off a layout, a litho-labeled
training slice, a fitted classifier + temperature, and a warm
:class:`~repro.serve.DetectionServer`.  Keeping that recipe in one
place is what makes the kill-and-reconnect guarantee testable — a
daemon restarted out of process trains **bit-identically** to an
in-process reference as long as both call :func:`bootstrap_server`
with the same arguments (training is seeded and single-threaded).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration.temperature import TemperatureScaler
from ..data.synth import DUV_RULES, EUV_RULES
from ..dataplane import BatchFeatureExtractor, DataPlaneConfig
from ..features.pipeline import FeatureExtractor
from ..layout.clip import extract_clip_grid
from ..litho.labeler import LithoLabeler
from ..litho.simulator import LithoSimulator
from ..model.classifier import HotspotClassifier
from .server import DetectionServer, ServeConfig

__all__ = ["ServeBootstrap", "bootstrap_server"]


@dataclass
class ServeBootstrap:
    """Everything :func:`bootstrap_server` built, ready to serve."""

    server: DetectionServer
    plane: BatchFeatureExtractor
    labeler: LithoLabeler
    classifier: HotspotClassifier
    temperature: TemperatureScaler
    #: all clips extracted off the layout (training slice first)
    clips: list
    #: litho labels of the training slice
    train_labels: np.ndarray
    #: clips beyond the training slice — what demo clients query
    serve_pool: list


def bootstrap_server(
    layout,
    train_clips: int = 48,
    grid: int = 96,
    seed: int = 0,
    arch: str = "mlp",
    epochs: int = 6,
    precision: str = "exact",
    chunk_size: int = 64,
    max_litho: int | None = None,
    serve_config: ServeConfig | None = None,
    bus=None,
    supervisor=None,
    model_name: str = "v1",
) -> ServeBootstrap:
    """Quick-train a model on ``layout`` and wrap it in a warm server.

    Deterministic end to end for fixed arguments: clip extraction is
    geometric, litho labels are simulated, and training is seeded — so
    two processes bootstrapping from the same layout file serve
    bit-identical scores.

    Raises :class:`ValueError` when the layout yields fewer clips than
    ``train_clips`` + 1 (nothing would be left to serve).
    """
    rules = EUV_RULES if layout.tech_nm <= 10 else DUV_RULES
    clips = extract_clip_grid(
        layout, rules.clip_size, rules.core_margin, drop_empty=False
    )
    if len(clips) <= train_clips:
        raise ValueError(
            f"layout yields {len(clips)} clips; need more than "
            f"train_clips={train_clips} to have anything left to serve"
        )
    plane = BatchFeatureExtractor(
        FeatureExtractor(grid=grid),
        config=DataPlaneConfig(chunk_size=chunk_size, precision=precision),
        bus=bus,
    )
    simulator = LithoSimulator.for_tech(layout.tech_nm, grid=grid)
    labeler = LithoLabeler(simulator, bus=bus, max_queries=max_litho)

    train_slice = clips[:train_clips]
    labels = np.asarray(labeler.label_batch(train_slice), dtype=np.int64)
    tensors = plane.encode_batch(train_slice)
    classifier = HotspotClassifier(
        input_shape=plane.extractor.tensor_shape,
        arch=arch,
        epochs=epochs,
        seed=seed,
        precision=precision,
    )
    classifier.fit_scaler(tensors)
    classifier.fit(tensors, labels)
    temperature = TemperatureScaler()
    try:
        temperature.fit(classifier.predict_logits(tensors), labels)
    except (ValueError, FloatingPointError):
        temperature.temperature_ = 1.0  # identity fallback

    server = DetectionServer(
        plane,
        config=serve_config if serve_config is not None else ServeConfig(),
        bus=bus,
        labeler=labeler,
        supervisor=supervisor,
    )
    server.register_model(model_name, classifier, temperature)
    return ServeBootstrap(
        server=server,
        plane=plane,
        labeler=labeler,
        classifier=classifier,
        temperature=temperature,
        clips=clips,
        train_labels=labels,
        serve_pool=clips[train_clips:],
    )
