"""Persistent in-process detection daemon with micro-batched dispatch.

The paper's end goal is cheap hotspot detection at chip scale; a
long-lived service amortizes the expensive warm state — fitted scaler,
trained network, content-addressed feature cache — across many small
detection requests.  :class:`DetectionServer` is that service:

* **warm sessions** — one :class:`~repro.engine.session.InferenceSession`
  per registered model version keeps scaler/network state resident; the
  session's thread-safe scaled cache (PR 9's correctness fix) makes one
  session shareable between the dispatcher and any pool-scoring caller.
* **micro-batching** — concurrent :meth:`~DetectionServer.submit` calls
  land in one queue; a single dispatcher thread coalesces all queued
  requests of the oldest model (up to ``max_batch_clips``, after an
  optional ``max_delay_s`` coalescing window) into one batched
  extract → scale → predict → calibrate pipeline pass.
* **shared cache, attributable** — all requests extract through one
  :class:`~repro.dataplane.extract.BatchFeatureExtractor`; its cache
  hits/misses are tagged per model version (``FeatureCache`` tenant
  stats), so one shared tier stays accountable per tenant.
* **admission control** — a request is shed at submit time (an
  :class:`AdmissionError`) when the queue's clip backlog would exceed
  ``max_pending_clips``, or when ``want_labels=True`` would overrun the
  litho labeler's ``max_queries`` budget (Definition 3).  Shed requests
  trip the supervisor's ``serve_overload`` sentinel (or a bare
  ``health_alert`` when no supervisor is attached).
* **typed events** — ``request_received`` / ``batch_dispatched`` /
  ``request_completed`` on the :class:`~repro.engine.events.EventBus`.

Bit-identity: the *extract* and *scale* stages are per-row bit-stable,
so they run coalesced; the network forward is **not** row-stable across
BLAS blockings (the same caveat :meth:`InferenceSession.iter_logits`
documents), so the dispatcher slices the coalesced scaled tensor back
per request and runs one ``predict_full`` per request — a coalesced
result is bit-identical to sequential single-request scoring, which the
serve tests assert exactly.

Lock discipline (PR 8 rules): all queue/model/counter state is
``guarded_by`` one re-entrant tracked lock; blocking waits (the wake
event, the coalescing sleep, client result waits) happen strictly
outside the critical sections, and events are emitted outside the
server lock so the lock-order graph stays ``server → bus``-free.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.concurrency import TrackedRLock, guarded_by
from ..calibration.temperature import scaled_softmax
from ..dataplane.extract import BatchFeatureExtractor
from ..engine.events import EventBus
from ..engine.session import InferenceSession

__all__ = [
    "AdmissionError",
    "DetectionServer",
    "RequestTimeout",
    "ServeConfig",
    "ServeError",
    "ServeResult",
    "ServerClosed",
]


class ServeError(RuntimeError):
    """Base error of the serving layer."""


class AdmissionError(ServeError):
    """The request was shed at admission (queue or litho budget)."""


class RequestTimeout(ServeError):
    """The submit wait timed out; a still-queued request is withdrawn
    (it will never be dispatched), an in-flight one runs to completion
    but its result is discarded.  Safe to retry — scoring is pure."""


class ServerClosed(ServeError):
    """The server no longer accepts (or will never run) the request."""


@dataclass(frozen=True)
class ServeConfig:
    """Queueing and dispatch policy of one :class:`DetectionServer`."""

    #: largest clip count one dispatched batch may coalesce (a single
    #: oversized request still dispatches alone)
    max_batch_clips: int = 256
    #: coalescing window: after finding work the dispatcher waits this
    #: long for more requests to arrive before dispatching (0 = none)
    max_delay_s: float = 0.002
    #: clip backlog bound; a submit pushing past it is shed
    max_pending_clips: int = 2048
    #: calibrated-probability cutoff for the hotspot verdict
    threshold: float = 0.5
    #: dispatcher poll interval (wake backstop) in seconds
    poll_s: float = 0.05
    #: seconds :meth:`DetectionServer.close` waits for the drain
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_batch_clips <= 0:
            raise ValueError(
                f"max_batch_clips must be positive, got "
                f"{self.max_batch_clips}"
            )
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}"
            )
        if self.max_pending_clips <= 0:
            raise ValueError(
                f"max_pending_clips must be positive, got "
                f"{self.max_pending_clips}"
            )
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )
        if self.poll_s <= 0:
            raise ValueError(f"poll_s must be positive, got {self.poll_s}")
        if self.drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be positive, got "
                f"{self.drain_timeout_s}"
            )


@dataclass(frozen=True)
class ServeResult:
    """Scored outcome of one detection request."""

    #: calibrated hotspot probabilities, one per submitted clip
    scores: np.ndarray
    #: ``scores >= threshold`` verdicts
    verdicts: np.ndarray
    #: raw logits ``(N, 2)``
    logits: np.ndarray
    #: normalized embedding features ``(N, D)``
    embeddings: np.ndarray
    #: model version that scored the request
    model: str
    #: clip count of the dispatched batch this request rode in
    coalesced: int
    #: litho ground-truth labels (only with ``want_labels=True``)
    labels: np.ndarray | None = None

    @property
    def n_hotspots(self) -> int:
        return int(np.count_nonzero(self.verdicts))


class _Request:
    """One queued submit: clips in, a completion event + result out."""

    __slots__ = (
        "clips", "model", "want_labels", "done", "result", "error",
        "received",
    )

    def __init__(self, clips: list, model: str | None,
                 want_labels: bool) -> None:
        self.clips = clips
        self.model = model
        self.want_labels = want_labels
        self.done = threading.Event()
        self.result: ServeResult | None = None
        self.error: BaseException | None = None
        self.received = time.perf_counter()

    def complete(self, result: ServeResult) -> None:
        self.result = result
        self.done.set()

    def fail(self, exc: BaseException) -> None:
        self.error = exc
        self.done.set()


@dataclass
class _ModelEntry:
    """One registered model version: warm session + calibration."""

    session: InferenceSession
    temperature: object | None = None

    def calibrate(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated probabilities (fitted temperature, else the raw
        Eq. (4) softmax) — row-local, so per-request and coalesced
        calibration agree bit-for-bit."""
        scaler = self.temperature
        if scaler is not None and scaler.temperature_ is not None:
            return scaler.transform(logits)
        return scaled_softmax(logits, 1.0)


class DetectionServer:
    """Warm multi-model detection daemon with micro-batched dispatch.

    Parameters
    ----------
    plane:
        The shared extraction front door (and its feature cache); the
        dispatcher tags its cache traffic with the dispatched model
        version, so ``plane.cache.tenant_stats()`` stays attributable.
    config:
        Queueing/dispatch policy (:class:`ServeConfig`).
    bus:
        Optional event bus for the serve events.
    labeler:
        Optional :class:`~repro.litho.labeler.LithoLabeler`; enables
        ``want_labels=True`` submits and the litho-budget admission
        check against its ``max_queries``.
    supervisor:
        Optional :class:`~repro.engine.guard.RunSupervisor`; shed
        requests trip its ``serve_overload`` sentinel.
    autostart:
        Start the dispatcher thread immediately (tests queue requests
        against a stopped server, then :meth:`start` it, to force a
        deterministic coalescing decision).
    """

    # class-level: queue/model/lifecycle state may only be touched
    # while self._lock is held
    _queue = guarded_by("_lock")
    _models = guarded_by("_lock")
    _closed = guarded_by("_lock")
    _started = guarded_by("_lock")
    _pending_clips = guarded_by("_lock")
    _counters = guarded_by("_lock")

    def __init__(
        self,
        plane: BatchFeatureExtractor,
        config: ServeConfig | None = None,
        bus: EventBus | None = None,
        labeler=None,
        supervisor=None,
        autostart: bool = True,
    ) -> None:
        self.plane = plane
        self.config = config if config is not None else ServeConfig()
        self.bus = bus
        self.labeler = labeler
        self.supervisor = supervisor
        self._lock = TrackedRLock("detection-server")
        with self._lock:
            self._queue = []  #: guarded_by: _lock
            self._models = {}  #: guarded_by: _lock
            self._closed = False  #: guarded_by: _lock
            self._started = False  #: guarded_by: _lock
            self._pending_clips = 0  #: guarded_by: _lock
            self._counters = {  #: guarded_by: _lock
                "received": 0, "rejected": 0, "completed": 0,
                "failed": 0, "timed_out": 0, "batches": 0,
                "dispatched_clips": 0,
            }
        self._wake = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="detection-server", daemon=True
        )
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
        self._thread.start()

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests and shut the dispatcher down.

        ``drain=True`` (the default) completes every queued request
        first; ``drain=False`` fails them with :class:`ServerClosed`.
        """
        with self._lock:
            self._closed = True
            started = self._started
            dropped = []
            # with no dispatcher running there is nothing to drain the
            # queue into — fail pending requests instead of hanging
            if not drain or not started:
                dropped = list(self._queue)
                self._queue = []
                self._pending_clips = 0
        for request in dropped:
            request.fail(ServerClosed("server closed before dispatch"))
        self._wake.set()
        if started and self._thread.is_alive():
            self._thread.join(timeout=self.config.drain_timeout_s)
        # promptness guarantee: whatever is still queued after the join
        # (a dead dispatcher, a drain that ran out of time) is failed
        # now — a submitter must never stay blocked on its future
        with self._lock:
            leftovers = list(self._queue)
            self._queue = []
            self._pending_clips = 0
        for request in leftovers:
            request.fail(ServerClosed("server closed before dispatch"))
        if started and self._thread.is_alive():
            raise ServeError(
                "dispatcher did not drain within "
                f"{self.config.drain_timeout_s}s"
            )

    def __enter__(self) -> "DetectionServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=exc_info[0] is None)

    # ------------------------------------------------------------------
    # model registry
    # ------------------------------------------------------------------
    def register_model(
        self,
        name: str,
        classifier,
        temperature=None,
        warm_tensors: np.ndarray | None = None,
    ) -> InferenceSession:
        """Register (or replace) a model version and return its warm
        session.  ``warm_tensors`` optionally seeds the session's pool
        so pool-indexed calls stay available next to serving."""
        if warm_tensors is None:
            warm_tensors = np.zeros(
                (0,) + tuple(classifier.input_shape), dtype=np.float64
            )
        session = InferenceSession(classifier, warm_tensors)
        entry = _ModelEntry(session=session, temperature=temperature)
        with self._lock:
            if self._closed:
                raise ServerClosed("server is closed")
            self._models[name] = entry
        return session

    def models(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    # ------------------------------------------------------------------
    # the client call
    # ------------------------------------------------------------------
    def submit(
        self,
        clips,
        model: str | None = None,
        want_labels: bool = False,
        timeout: float | None = None,
    ) -> ServeResult:
        """Score ``clips``; blocks until the coalesced dispatch served
        the request (or ``timeout`` seconds passed).

        Raises :class:`AdmissionError` when shed, :class:`ServerClosed`
        after :meth:`close`, and re-raises any pipeline failure of this
        request on the calling thread.
        """
        clips = list(clips)
        if not clips:
            raise ServeError("empty request (no clips)")
        if want_labels and self.labeler is None:
            raise ServeError("want_labels=True needs a labeler")
        request = _Request(clips, model, want_labels)
        overload = None
        with self._lock:
            if self._closed:
                raise ServerClosed("server is closed to new requests")
            if model is None:
                if len(self._models) != 1:
                    raise ServeError(
                        "model=None needs exactly one registered model, "
                        f"have {sorted(self._models)}"
                    )
                request.model = next(iter(self._models))
            elif model not in self._models:
                raise ServeError(
                    f"unknown model {model!r}; registered: "
                    f"{sorted(self._models)}"
                )
            backlog = self._pending_clips + len(clips)
            if backlog > self.config.max_pending_clips:
                overload = (
                    f"queue overloaded: {backlog} pending clips would "
                    f"exceed max_pending_clips="
                    f"{self.config.max_pending_clips}"
                )
            else:
                overload = self._budget_overrun(len(clips), want_labels)
            if overload is None:
                self._queue.append(request)
                self._pending_clips += len(clips)
                self._counters["received"] += 1
                depth = len(self._queue)
            else:
                self._counters["rejected"] += 1
        if overload is not None:
            self._shed(overload, request.model, len(clips))
            raise AdmissionError(overload)
        if self.bus is not None:
            self.bus.emit(
                "request_received",
                model=request.model,
                n_clips=len(clips),
                queue_depth=depth,
            )
        self._wake.set()
        if not request.done.wait(timeout):
            # withdraw a still-queued request so the dispatcher never
            # wastes a batch slot on a caller that already gave up
            with self._lock:
                try:
                    self._queue.remove(request)
                except ValueError:
                    withdrawn = False  # already taken by the dispatcher
                else:
                    withdrawn = True
                    self._pending_clips -= len(clips)
                    self._counters["timed_out"] += 1
            if withdrawn or not request.done.is_set():
                raise RequestTimeout(
                    f"request timed out after {timeout}s "
                    f"({'withdrawn from queue' if withdrawn else 'in flight'})"
                )
            # completed in the race window between wait and withdraw —
            # fall through and return the result
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result

    def _budget_overrun(self, n_clips: int, want_labels: bool) -> str | None:  #: requires: _lock
        """Admission-time litho-budget check (best effort — the labeler
        still enforces the budget authoritatively at labeling time)."""
        if not want_labels or self.labeler is None:
            return None
        budget = self.labeler.max_queries
        if budget is None:
            return None
        used = self.labeler.query_count
        if used + n_clips > budget:
            return (
                f"litho budget exhausted: {used} used + {n_clips} "
                f"requested > max_queries={budget}"
            )
        return None

    def _shed(self, detail: str, model: str | None, n_clips: int) -> None:
        """Surface one shed request through the guard machinery."""
        if self.supervisor is not None:
            self.supervisor.overloaded(
                detail, model=model, n_clips=n_clips
            )
        elif self.bus is not None:
            self.bus.emit(
                "health_alert",
                sentinel="serve_overload",
                stage="serve",
                detail=detail,
                model=model,
                n_clips=n_clips,
            )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Lifetime serving counters plus per-tenant cache stats."""
        with self._lock:
            counters = dict(self._counters)
            depth = len(self._queue)
        batches = counters["batches"]
        counters["queue_depth"] = depth
        counters["mean_batch_clips"] = (
            counters["dispatched_clips"] / batches if batches else 0.0
        )
        counters["cache_tenants"] = self.plane.cache.tenant_stats()
        return counters

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _run(self) -> None:
        cfg = self.config
        while True:
            self._wake.wait(timeout=cfg.poll_s)
            self._wake.clear()
            with self._lock:
                has_work = bool(self._queue)
                backlog = self._pending_clips
                closed = self._closed
            if not has_work:
                if closed:
                    return
                continue
            if (
                cfg.max_delay_s > 0.0
                and not closed
                and backlog < cfg.max_batch_clips
            ):
                # coalescing window: let concurrent clients pile on
                time.sleep(cfg.max_delay_s)
            batch = self._take_batch()
            if batch:
                self._dispatch(batch)

    def _take_batch(self) -> list[_Request]:
        """Pop the oldest request's model group from the queue, FIFO,
        capped at ``max_batch_clips`` (other models keep their place)."""
        cfg = self.config
        with self._lock:
            if not self._queue:
                return []
            model = self._queue[0].model
            batch: list[_Request] = []
            taken = 0
            i = 0
            while i < len(self._queue):
                request = self._queue[i]
                if request.model != model:
                    i += 1
                    continue
                if batch and taken + len(request.clips) > cfg.max_batch_clips:
                    break
                batch.append(self._queue.pop(i))
                taken += len(request.clips)
            self._pending_clips -= taken
            more = bool(self._queue)
        if more:
            # other models (or overflow) are still queued — dispatch
            # again immediately instead of sleeping out the poll
            self._wake.set()
        return batch

    def _dispatch(self, batch: list[_Request]) -> None:
        """One coalesced pipeline pass: shared extract + scale, then a
        per-request forward slice (bit-identity, see module docs)."""
        model = batch[0].model
        assert model is not None
        all_clips = [clip for request in batch for clip in request.clips]
        with self._lock:
            entry = self._models[model]
            depth = len(self._queue)
            self._counters["batches"] += 1
            self._counters["dispatched_clips"] += len(all_clips)
        if self.bus is not None:
            self.bus.emit(
                "batch_dispatched",
                model=model,
                n_requests=len(batch),
                n_clips=len(all_clips),
                queue_depth=depth,
            )
        # the dispatcher is the only thread driving the plane, so the
        # tenant tag is safe to swap per dispatched batch
        self.plane.tenant = model
        try:
            tensors = self.plane.encode_batch(all_clips)
            scaled = entry.session.scale_tensors(tensors)
        except BaseException as exc:  # noqa: BLE001 - routed to clients
            for request in batch:
                request.fail(exc)
            with self._lock:
                self._counters["failed"] += len(batch)
            return
        offset = 0
        for request in batch:
            n = len(request.clips)
            part = scaled[offset : offset + n]
            offset += n
            try:
                result = self._score_request(
                    request, entry, part, model, len(all_clips)
                )
            except BaseException as exc:  # noqa: BLE001 - routed to client
                request.fail(exc)
                with self._lock:
                    self._counters["failed"] += 1
                continue
            request.complete(result)
            with self._lock:
                self._counters["completed"] += 1
            if self.bus is not None:
                self.bus.emit(
                    "request_completed",
                    model=model,
                    n_clips=n,
                    n_hotspots=result.n_hotspots,
                    coalesced=len(all_clips),
                    serve_seconds=time.perf_counter() - request.received,
                )

    def _score_request(
        self,
        request: _Request,
        entry: _ModelEntry,
        scaled_part: np.ndarray,
        model: str,
        coalesced: int,
    ) -> ServeResult:
        prediction = entry.session.classifier.predict_full(
            scaled_part, prescaled=True
        )
        probs = entry.calibrate(prediction.logits)
        scores = np.asarray(probs[:, 1])
        verdicts = scores >= self.config.threshold
        labels = None
        if request.want_labels:
            labels = np.asarray(
                self.labeler.label_batch(request.clips), dtype=np.int64
            )
        return ServeResult(
            scores=scores,
            verdicts=verdicts,
            logits=prediction.logits,
            embeddings=prediction.embeddings,
            model=model,
            coalesced=coalesced,
            labels=labels,
        )
