"""The overall pattern-sampling and hotspot-detection flow (Algorithm 2).

One :class:`PSHDFramework` run executes the paper's full pipeline on a
benchmark dataset:

1. Fit a GMM on (PCA-compressed) features of the whole pool; compute
   posterior probabilities ``P`` (line 1).
2. Split into initial training set ``L0`` (lowest posterior =
   hotspot-like), validation set ``V0`` (posterior-stratified) and
   unlabeled pool ``U0`` (line 2); label ``L0``/``V0`` through the
   metered oracle; train the CNN (lines 3–5).
3. For ``N`` iterations: form query set ``Q`` of the ``n`` lowest-
   posterior pool samples (line 7), fit temperature ``T`` on ``V0``
   (line 8), run the batch selector — EntropySampling by default
   (line 9) — label the ``k`` chosen clips, move them to ``L`` and
   fine-tune the model (lines 10–12).  Unselected query samples return
   to the pool.
4. Full-chip detection on the remaining pool with the calibrated model;
   score with Eqs. (1)–(2).

Baselines (TS, QP, random) plug in through the ``selector`` hook, which
receives the same calibrated probabilities and embeddings; ``selector``
also accepts a registered method name (see
:mod:`repro.engine.registry`).

``run()`` is decomposed into composable stages — ``seed``, then per
iteration ``calibrate`` / ``select`` / ``update``, then ``detect`` —
wired through an :class:`~repro.engine.session.InferenceSession` (the
pool tensor is scaled once per run, and each query batch gets logits +
embeddings from a single tapped forward pass).  Every stage transition
is published on an :class:`~repro.engine.events.EventBus`; run history
is rebuilt from those events by a
:class:`~repro.engine.events.HistoryRecorder` subscriber.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..calibration.temperature import TemperatureScaler
from ..data.dataset import ClipDataset, DatasetLabeler
from ..dataplane.config import DataPlaneConfig
from ..engine.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    load_checkpoint,
    posterior_array,
    save_checkpoint,
    scaler_arrays,
)
from ..engine.events import EventBus, HistoryRecorder
from ..engine.guard import GuardConfig, GuardReport, RunSupervisor
from ..engine.session import InferenceSession
from ..litho.labeler import LithoBudgetExceeded
from ..model.classifier import HotspotClassifier
from ..nn.runtime import PRECISION_MODES
from ..nn.losses import softmax
from ..stats.gmm import GaussianMixture
from ..stats.pca import PCA
from .metrics import PSHDResult, litho_overhead, pshd_accuracy
from .sampling import SamplingConfig, entropy_sampling
from .stopping import LoopState, StoppingCriterion
from .uncertainty import hotspot_aware_uncertainty

__all__ = ["FrameworkConfig", "PSHDFramework", "Selector", "SelectionContext"]


@dataclass
class SelectionContext:
    """Everything a batch selector may consult (line 9 of Alg. 2).

    ``calibrated_probs`` are temperature-scaled (Eq. (5)); ``raw_probs``
    are the plain softmax output (Eq. (4)) — the QP baseline of [14] uses
    the latter, which is exactly the calibration gap the paper fixes.
    """

    calibrated_probs: np.ndarray
    raw_probs: np.ndarray
    embeddings: np.ndarray
    k: int
    rng: np.random.Generator


#: selector signature: SelectionContext -> indices into the query set
Selector = Callable[[SelectionContext], np.ndarray]


@dataclass
class _RunState:
    """Mutable state threaded through the run stages."""

    posterior: np.ndarray
    train_idx: list[int]
    y_train: list[int]
    val_idx: np.ndarray
    y_val: np.ndarray
    pool: list[int]
    temperature: TemperatureScaler
    discarded: list[int] = field(default_factory=list)
    batch_hotspot_trace: list[int] = field(default_factory=list)
    iterations_run: int = 0


@dataclass
class FrameworkConfig:
    """Hyperparameters of Algorithm 2.

    ``n_query``/``k_batch`` are the two-step batch sizes ``n`` and ``k``;
    ``n_iterations`` is ``N``.  ``sampling`` configures Algorithm 1 (the
    Table III ablations); ``selector`` overrides the batch selector
    entirely for baseline methods.
    """

    n_query: int = 120
    k_batch: int = 20
    n_iterations: int = 8
    init_train: int = 40
    val_size: int = 30
    gmm_components: int = 8
    pca_dim: int = 10
    posterior_features: str = "density"
    #: D4 orientation augmentation (DCT-domain) during training — helps
    #: most when labeled sets are small (see repro.features.augment)
    augment: bool = False
    epochs_initial: int = 20
    epochs_update: int = 6
    arch: str = "cnn"
    lr: float = 1e-3
    seed: int = 0
    #: compute precision of classifier inference and feature encoding:
    #: "exact" (default) is bit-identical to the seed float64 kernels;
    #: "fast" computes forward passes in float32 (see repro.nn.runtime)
    precision: str = "exact"
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    #: a selector callable, a registered method name (resolved through
    #: repro.engine.registry, which may also adjust other fields — e.g.
    #: ``"qp"`` turns on query-remainder discarding), or None for the
    #: paper's EntropySampling
    selector: Selector | str | None = None
    method_name: str = "ours"
    #: discard unselected query samples each iteration, as the QP flow of
    #: [14] does (the paper keeps them — its second critique of [14])
    discard_query_rest: bool = False
    #: temperature scaling on/off (design-choice D5): with False, the
    #: raw softmax of Eq. (4) feeds sampling and detection directly
    calibrate: bool = True
    #: optional early-termination predicate evaluated each iteration
    #: (see repro.core.stopping); n_iterations remains the hard ceiling
    stop_when: StoppingCriterion | None = None
    #: data-plane settings (chunk size, worker count, executor flavour,
    #: feature-cache tiers) used by entry points that extract features
    #: or batch-label for this run (CLI detect, benchmark builds)
    dataplane: DataPlaneConfig = field(default_factory=DataPlaneConfig)
    #: logits batch of the final detection sweep: ``0`` (default) scores
    #: the whole remaining pool in one call — bit-identical to the
    #: pre-streaming detect stage; ``> 0`` streams the pool through
    #: ``InferenceSession.iter_logits`` in batches of this many clips
    #: (bounded memory on huge pools, last-ulp BLAS variation possible)
    detect_batch: int = 0
    #: write a crash-safe checkpoint to ``checkpoint_dir`` every this
    #: many completed iterations (0 = off); see repro.engine.checkpoint
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    #: run-health supervision: sentinel thresholds, recovery budgets and
    #: the litho budget / stage watchdog (see repro.engine.guard).  Not
    #: part of the checkpoint fingerprint — supervision is
    #: bit-transparent on healthy runs, so guarded and unguarded runs
    #: may resume each other's checkpoints.
    guard: GuardConfig = field(default_factory=GuardConfig)

    def __post_init__(self) -> None:
        for name in ("n_query", "k_batch", "n_iterations", "init_train",
                     "val_size", "gmm_components", "pca_dim"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.posterior_features not in ("density", "flat"):
            raise ValueError(
                "posterior_features must be 'density' or 'flat', got "
                f"{self.posterior_features!r}"
            )
        if self.precision not in PRECISION_MODES:
            raise ValueError(
                f"precision must be one of {PRECISION_MODES}, "
                f"got {self.precision!r}"
            )
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_every and not self.checkpoint_dir:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if self.detect_batch < 0:
            raise ValueError(
                f"detect_batch must be >= 0, got {self.detect_batch}"
            )


class PSHDFramework:
    """Executable Algorithm 2 over a :class:`ClipDataset`."""

    def __init__(
        self,
        dataset: ClipDataset,
        config: FrameworkConfig | None = None,
        classifier: HotspotClassifier | None = None,
        bus: EventBus | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config if config is not None else FrameworkConfig()
        if isinstance(self.config.selector, str):
            from ..engine.registry import get_method

            self.config = get_method(self.config.selector).build_config(
                self.config
            )
        self.bus = bus if bus is not None else EventBus()
        if len(dataset) < self.config.init_train + self.config.val_size + 1:
            raise ValueError(
                f"dataset of {len(dataset)} clips too small for "
                f"init_train={self.config.init_train} + "
                f"val_size={self.config.val_size}"
            )
        if classifier is None:
            classifier = HotspotClassifier(
                input_shape=dataset.tensors.shape[1:],
                arch=self.config.arch,
                lr=self.config.lr,
                seed=self.config.seed,
                augment=self.config.augment,
                precision=self.config.precision,
            )
        self.classifier = classifier
        # the litho budget is enforced by the labeler whether or not the
        # guard is enabled; the guard decides graceful stop vs. abort
        self.labeler = DatasetLabeler(
            dataset, bus=self.bus, max_queries=self.config.guard.max_litho
        )
        self._supervisor: RunSupervisor | None = None
        #: fitted scaler of the final detection sweep, kept for callers
        #: that score more clips with the finished model (e.g. the CLI's
        #: streaming full-chip scan)
        self.final_temperature_: TemperatureScaler | None = None

    # ------------------------------------------------------------------
    def _density_core_features(self) -> np.ndarray:
        """Density-grid cells that lie inside the core region.

        Margin context varies per clip placement and drowns the pattern
        signature, so the posterior model looks only at the cells the
        clip owns.
        """
        dataset = self.dataset
        cells = int(dataset.meta.get("density_cells", 8))
        density = dataset.flats[:, -cells * cells :].reshape(-1, cells, cells)
        clip = dataset.clips[0]
        width, _ = clip.size
        core = clip.core_local()
        c0 = int(np.floor(core.x0 / width * cells))
        c1 = int(np.ceil(core.x1 / width * cells))
        if c1 <= c0:
            c0, c1 = 0, cells
        return density[:, c0:c1, c0:c1].reshape(len(dataset), -1)

    def _fit_posterior(
        self, seed_offset: int = 0
    ) -> tuple[np.ndarray, GaussianMixture]:
        """Line 1: GMM posterior of every clip (low = hotspot-like).

        By default the mixture is fitted on the core-region cells of the
        density signature, which expose the low-coverage fingerprint of
        near-critical geometry far more directly than the full DCT
        spectrum (margin context is placement noise); set
        ``posterior_features='flat'`` to use the full feature vector.
        ``seed_offset`` perturbs the mixture seed (the run supervisor's
        re-seeding recovery); 0 is the configured run seed.
        """
        cfg = self.config
        if cfg.posterior_features == "density":
            flats = self._density_core_features()
        else:
            flats = self.dataset.flats
        pca = PCA(min(cfg.pca_dim, flats.shape[1]))
        compressed = pca.fit_transform(flats)
        components = min(cfg.gmm_components, max(len(flats) // 10, 1))
        gmm = GaussianMixture(
            n_components=components, seed=cfg.seed + seed_offset
        )
        gmm.fit(compressed)
        return gmm.posterior(compressed), gmm

    def _seed_posterior(self) -> np.ndarray:
        """The seeding posterior, supervised when a guard is active."""
        if self._supervisor is None:
            return self._fit_posterior()[0]
        return self._supervisor.guarded_posterior(
            self._fit_posterior, n=len(self.dataset)
        )

    def _train(self, stage: str, iteration: int | None, train_fn):
        """Run one training stage, supervised when a guard is active."""
        if self._supervisor is None:
            return train_fn()
        return self._supervisor.guarded_training(
            self.classifier, train_fn, stage=stage, iteration=iteration
        )

    def _split(
        self, posterior: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Line 2: (train, validation, pool) index split.

        The training seed takes the lowest-posterior (hotspot-like)
        clips for half its budget and spreads the other half evenly
        across the posterior ranking, so the initial model sees both the
        rare tail and the frequent pattern mass — without the coverage
        half, the model never learns the frequent clean patterns and
        floods detection with false alarms.  Validation is likewise
        stratified so temperature scaling sees the full confidence
        spectrum.
        """
        cfg = self.config
        order = np.argsort(posterior, kind="stable")
        n_tail = cfg.init_train // 2
        tail = order[:n_tail]
        rest = order[n_tail:]
        n_spread = cfg.init_train - n_tail
        spread_pos = np.unique(
            np.linspace(0, len(rest) - 1, n_spread).astype(int)
        )
        train = np.concatenate([tail, rest[spread_pos]])
        remaining = np.setdiff1d(order, train, assume_unique=False)
        # keep remaining in posterior order for the validation spread
        remaining = remaining[np.argsort(posterior[remaining], kind="stable")]
        val_pos = np.unique(
            np.linspace(0, len(remaining) - 1, cfg.val_size).astype(int)
        )
        val = remaining[val_pos]
        pool_mask = np.ones(len(posterior), dtype=bool)
        pool_mask[train] = False
        pool_mask[val] = False
        pool = np.flatnonzero(pool_mask)
        return train, val, pool

    def _select(self, context: SelectionContext) -> tuple[np.ndarray, dict]:
        """Line 9: batch selection (EntropySampling or baseline hook)."""
        if self.config.selector is not None:
            chosen = np.asarray(self.config.selector(context), dtype=np.int64)
            return chosen, {}
        outcome = entropy_sampling(
            context.calibrated_probs,
            context.embeddings,
            context.k,
            self.config.sampling,
        )
        return outcome.selected, {
            "weights": outcome.weights.tolist(),
            "mean_uncertainty": float(outcome.uncertainty.mean()),
            "mean_diversity": float(outcome.diversity.mean()),
        }

    # ------------------------------------------------------------------
    # run stages (Alg. 2 decomposed; each stage emits one bus event)
    # ------------------------------------------------------------------
    def _stage_seed(self) -> _RunState:
        """Lines 1-5: posterior fit, split, label L0/V0, initial train."""
        cfg = self.config
        dataset = self.dataset
        stage_start = time.perf_counter()

        posterior = self._seed_posterior()
        train_idx, val_idx, pool = self._split(posterior)
        train_idx = list(train_idx)
        val_idx = np.asarray(val_idx)
        pool = list(pool)

        # a litho budget smaller than the seed sets cannot produce any
        # model at all, so a budget overrun here propagates even under
        # supervision — there is nothing to degrade to yet
        y_train = list(self.labeler.label_batch(train_idx))
        y_val = self.labeler.label_batch(val_idx)

        # lines 3-5: initialize and train the learning engine
        self.classifier.fit_scaler(dataset.tensors)
        self._train(
            "seed",
            None,
            lambda: self.classifier.fit(
                dataset.tensors[train_idx],
                np.array(y_train),
                epochs=cfg.epochs_initial,
            ),
        )

        state = _RunState(
            posterior=posterior,
            train_idx=train_idx,
            y_train=y_train,
            val_idx=val_idx,
            y_val=y_val,
            pool=pool,
            temperature=TemperatureScaler(),
        )
        self.bus.emit(
            "run_start",
            benchmark=dataset.name,
            method=cfg.method_name,
            pool_size=len(pool),
            n_train=len(train_idx),
            n_val=len(val_idx),
            litho_used=self.labeler.query_count,
            seed_seconds=time.perf_counter() - stage_start,
        )
        return state

    def _calibrate(self, session: InferenceSession, state: _RunState) -> None:
        """Line 8: fit T on the validation set (identity when the D5
        ablation turns calibration off).  One helper serves both the AL
        loop and the final detection stage."""
        if not self.config.calibrate:
            state.temperature.temperature_ = 1.0
            return
        logits = session.logits(state.val_idx)
        if self._supervisor is None:
            state.temperature.fit(logits, state.y_val)
        else:
            self._supervisor.guarded_calibration(
                state.temperature, logits, state.y_val
            )

    def _stage_select(
        self,
        session: InferenceSession,
        state: _RunState,
        rng: np.random.Generator,
        iteration: int,
    ) -> tuple[np.ndarray, np.ndarray, dict] | None:
        """Lines 7+9: form the query set and run the batch selector.

        Returns ``(query, batch, diagnostics)`` with global dataset
        indices, or ``None`` when the configured stopping criterion
        fires (the loop guard of Alg. 2).
        """
        cfg = self.config
        stage_start = time.perf_counter()

        # line 7: query set = n lowest-posterior pool samples
        pool_arr = np.array(state.pool)
        order = np.argsort(state.posterior[pool_arr], kind="stable")
        query = pool_arr[order[: cfg.n_query]]

        # line 9: EntropySampling over the query set — calibrated probs
        # and embeddings come from one tapped forward pass
        query_logits, query_embeddings = session.predict_full(query)
        context = SelectionContext(
            calibrated_probs=state.temperature.transform(query_logits),
            raw_probs=softmax(query_logits),
            embeddings=query_embeddings,
            k=cfg.k_batch,
            rng=rng,
        )
        # optional termination condition (Alg. 2's loop guard)
        if cfg.stop_when is not None:
            loop_state = LoopState(
                iteration=iteration,
                litho_used=self.labeler.query_count,
                pool_size=len(state.pool),
                max_uncertainty=float(
                    hotspot_aware_uncertainty(context.calibrated_probs).max()
                )
                if len(query)
                else 0.0,
                recent_batch_hotspots=state.batch_hotspot_trace,
            )
            if cfg.stop_when(loop_state):
                return None

        fallback = (
            self._supervisor.guard_selection(context, iteration)
            if self._supervisor is not None
            else None
        )
        if fallback is not None:
            chosen_local, diag = fallback
        else:
            chosen_local, diag = self._select(context)
        batch = query[chosen_local]
        self.bus.emit(
            "batch_selected",
            iteration=iteration,
            selected=[int(i) for i in batch],
            query_size=int(len(query)),
            temperature=float(state.temperature.temperature_),
            select_seconds=time.perf_counter() - stage_start,
        )
        return query, batch, diag

    def _stage_update(
        self,
        state: _RunState,
        iteration: int,
        query: np.ndarray,
        batch: np.ndarray,
        diag: dict,
    ) -> None:
        """Lines 10-12: label the batch, move it from U to L, fine-tune.

        Our method returns unselected query samples to the pool; the
        ``discard_query_rest`` flag reproduces [14]'s behaviour of
        dropping the whole query set.
        """
        cfg = self.config
        stage_start = time.perf_counter()

        y_batch = self.labeler.label_batch(batch)
        state.batch_hotspot_trace.append(int(np.sum(y_batch)))
        state.train_idx.extend(int(i) for i in batch)
        state.y_train.extend(int(label) for label in y_batch)
        removed = set(int(i) for i in batch)
        if cfg.discard_query_rest:
            rest = set(int(i) for i in query) - removed
            state.discarded.extend(rest)
            removed |= rest
        state.pool = [i for i in state.pool if i not in removed]

        # line 12: update the model on the enlarged training set
        self._train(
            "update",
            iteration,
            lambda: self.classifier.update(
                self.dataset.tensors[state.train_idx],
                np.array(state.y_train),
                epochs=cfg.epochs_update,
            ),
        )

        self.bus.emit(
            "model_updated",
            iteration=iteration,
            train_size=len(state.train_idx),
            hotspots_in_train=int(np.sum(state.y_train)),
            temperature=float(state.temperature.temperature_),
            batch_hotspots=int(np.sum(y_batch)),
            litho_used=self.labeler.query_count,
            update_seconds=time.perf_counter() - stage_start,
            diagnostics=diag,
        )

    def _stage_detect(
        self, session: InferenceSession, state: _RunState
    ) -> tuple[int, int]:
        """Full-chip detection on the remaining unlabeled clips (pool
        plus anything a discarding baseline dropped) with the calibrated
        model.  Returns ``(hits, false_alarms)``."""
        stage_start = time.perf_counter()
        state.pool = state.pool + state.discarded
        hits = 0
        false_alarms = 0
        if state.pool:
            pool_arr = np.array(state.pool)
            self._calibrate(session, state)
            self.final_temperature_ = state.temperature
            # consume the logits as a stream: with detect_batch == 0
            # (default) this is one whole-pool batch, bit-identical to
            # the monolithic call; > 0 bounds detect-stage memory
            for rows, logits in session.iter_logits(
                pool_arr, self.config.detect_batch
            ):
                predicted_hot = (
                    state.temperature.transform(logits)[:, 1] > 0.5
                )
                actual = self.dataset.labels[rows].astype(bool)
                hits += int(np.sum(predicted_hot & actual))
                false_alarms += int(np.sum(predicted_hot & ~actual))
        self.bus.emit(
            "detection_done",
            scanned=len(state.pool),
            hits=hits,
            false_alarms=false_alarms,
            litho_used=self.labeler.query_count + false_alarms,
            detect_seconds=time.perf_counter() - stage_start,
        )
        return hits, false_alarms

    def _run_loop(
        self,
        session: InferenceSession,
        state: _RunState,
        rng: np.random.Generator,
        recorder: HistoryRecorder,
        first_iteration: int,
    ) -> tuple[int, int]:
        """Iterations ``first_iteration..N`` plus final detection."""
        cfg = self.config
        for iteration in range(first_iteration, cfg.n_iterations + 1):
            if not state.pool:
                break
            self.bus.emit(
                "iteration_start",
                iteration=iteration,
                pool_size=len(state.pool),
                litho_used=self.labeler.query_count,
            )
            self._calibrate(session, state)
            selection = self._stage_select(session, state, rng, iteration)
            if selection is None:
                break
            state.iterations_run = iteration
            query, batch, diag = selection
            try:
                self._stage_update(state, iteration, query, batch, diag)
            except LithoBudgetExceeded as exc:
                if self._supervisor is None:
                    raise
                # the batch was rejected before anything was charged or
                # committed; stop gracefully — detection still runs on
                # the model trained so far
                self._supervisor.budget_exhausted(
                    exc, stage="update", iteration=iteration
                )
                break
            self._maybe_checkpoint(state, rng, recorder, iteration)

        return self._stage_detect(session, state)

    def _start_guard(self) -> RunSupervisor | None:
        """Create and attach a supervisor for this run (or ``None``
        when supervision is disabled)."""
        if not self.config.guard.enabled:
            self._supervisor = None
            return None
        supervisor = RunSupervisor(
            self.config.guard, self.bus, seed=self.config.seed
        )
        supervisor.attach()
        self._supervisor = supervisor
        return supervisor

    def _finish_guard(
        self, supervisor: RunSupervisor | None
    ) -> GuardReport | None:
        """Emit and archive the guard report of a completed run."""
        if supervisor is None:
            return None
        report = supervisor.report()
        self.bus.emit("guard_report", **report.as_dict())
        if self.config.checkpoint_dir:
            report.save(self.config.checkpoint_dir)
        return report

    def _end_guard(self, supervisor: RunSupervisor | None) -> None:
        if supervisor is not None:
            supervisor.detach()
        self._supervisor = None

    def _build_result(
        self,
        state: _RunState,
        hits: int,
        false_alarms: int,
        elapsed: float,
        recorder: HistoryRecorder,
        guard: GuardReport | None = None,
    ) -> PSHDResult:
        dataset = self.dataset
        hs_train = int(np.sum(state.y_train))
        hs_val = int(np.sum(state.y_val))
        accuracy = pshd_accuracy(hs_train, hs_val, hits, dataset.n_hotspots)
        litho = litho_overhead(
            len(state.train_idx), len(state.val_idx), false_alarms
        )

        return PSHDResult(
            benchmark=dataset.name,
            method=self.config.method_name,
            accuracy=accuracy,
            litho=litho,
            hits=hits,
            false_alarms=false_alarms,
            n_train=len(state.train_idx),
            n_val=len(state.val_idx),
            hs_total=dataset.n_hotspots,
            iterations=state.iterations_run,
            pshd_seconds=elapsed,
            history=recorder.history,
            labeled=self.labeler.labeled_indices,
            guard=guard.as_dict() if guard is not None else None,
        )

    def run(self) -> PSHDResult:
        """Execute Algorithm 2 and score the result (Eqs. (1)-(2))."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        started = time.perf_counter()

        session = InferenceSession(self.classifier, self.dataset.tensors)
        recorder = self.bus.subscribe(HistoryRecorder())
        supervisor = self._start_guard()
        try:
            state = self._stage_seed()
            hits, false_alarms = self._run_loop(
                session, state, rng, recorder, first_iteration=1
            )
            report = self._finish_guard(supervisor)
        finally:
            self.bus.unsubscribe(recorder)
            self._end_guard(supervisor)

        return self._build_result(
            state, hits, false_alarms, time.perf_counter() - started,
            recorder, guard=report,
        )

    def resume(self, path) -> PSHDResult:
        """Re-enter Algorithm 2 from a checkpoint written by a previous
        (possibly killed) run of the *same* configuration.

        Restores every artifact the loop threads between iterations —
        weights, scaler statistics, optimizer moments, temperature,
        the L/V/U index sets, labeler meter, loop counters and both RNG
        bit states — so continuation is bit-identical to a run that was
        never interrupted: same selections, same litho spend, same
        final weights.  Raises
        :class:`~repro.engine.checkpoint.CheckpointError` when the
        checkpoint does not match this framework's dataset/config.
        """
        started = time.perf_counter()
        checkpoint = load_checkpoint(path)
        state, rng = self._restore_checkpoint(checkpoint)

        session = InferenceSession(self.classifier, self.dataset.tensors)
        recorder = HistoryRecorder()
        recorder.history = list(checkpoint.history)
        self.bus.subscribe(recorder)
        self.bus.emit(
            "run_resumed",
            iteration=checkpoint.iteration,
            path=str(path),
            pool_size=len(state.pool),
            litho_used=self.labeler.query_count,
        )
        supervisor = self._start_guard()
        try:
            hits, false_alarms = self._run_loop(
                session,
                state,
                rng,
                recorder,
                first_iteration=checkpoint.iteration + 1,
            )
            report = self._finish_guard(supervisor)
        finally:
            self.bus.unsubscribe(recorder)
            self._end_guard(supervisor)

        return self._build_result(
            state, hits, false_alarms, time.perf_counter() - started,
            recorder, guard=report,
        )

    # ------------------------------------------------------------------
    # checkpoint capture / restore
    # ------------------------------------------------------------------
    def _fingerprint(self) -> dict:
        """Everything that must match between the checkpointing and the
        resuming run for bit-identical continuation.  ``n_iterations``
        is deliberately absent — a resumed run may extend the loop."""
        cfg = self.config
        fingerprint = {
            "benchmark": self.dataset.name,
            "n_clips": len(self.dataset),
            "method": cfg.method_name,
            "arch": cfg.arch,
            "seed": cfg.seed,
            "n_query": cfg.n_query,
            "k_batch": cfg.k_batch,
            "init_train": cfg.init_train,
            "val_size": cfg.val_size,
            "posterior_features": cfg.posterior_features,
            "augment": cfg.augment,
            "calibrate": cfg.calibrate,
            "discard_query_rest": cfg.discard_query_rest,
            "lr": cfg.lr,
            "epochs_initial": cfg.epochs_initial,
            "epochs_update": cfg.epochs_update,
        }
        # like the guard exclusion above, "exact" (the default) is left
        # out so checkpoints written before the precision policy existed
        # still resume; a non-default mode must match on both sides
        if cfg.precision != "exact":
            fingerprint["precision"] = cfg.precision
        # same rule for detect_batch: 0 (the bit-identical whole-pool
        # sweep) stays out so older checkpoints resume; a batched
        # detect must match because its logits may differ in the ulp
        if cfg.detect_batch:
            fingerprint["detect_batch"] = cfg.detect_batch
        return fingerprint

    def _capture_checkpoint(
        self,
        state: _RunState,
        rng: np.random.Generator,
        recorder: HistoryRecorder,
        iteration: int,
    ) -> RunCheckpoint:
        classifier = self.classifier
        arrays: dict[str, np.ndarray] = {
            f"net/{key}": value
            for key, value in classifier.network.get_weights().items()
        }
        arrays.update(
            {
                f"optim/{key}": value
                for key, value in classifier.optimizer_state_arrays().items()
            }
        )
        arrays.update(
            scaler_arrays(classifier.scaler.mean_, classifier.scaler.std_)
        )
        arrays["state/posterior"] = posterior_array(state.posterior)

        return RunCheckpoint(
            schema=self._fingerprint(),
            iteration=iteration,
            rng_state=rng.bit_generator.state,
            shuffle_rng_state=classifier.shuffle_rng_state(),
            temperature=state.temperature.temperature_,
            index_sets={
                "train_idx": [int(i) for i in state.train_idx],
                "y_train": [int(y) for y in state.y_train],
                "val_idx": [int(i) for i in state.val_idx],
                "y_val": [int(y) for y in state.y_val],
                "pool": [int(i) for i in state.pool],
                "discarded": [int(i) for i in state.discarded],
                "batch_hotspot_trace": list(state.batch_hotspot_trace),
                "iterations_run": state.iterations_run,
            },
            labeler_state=self.labeler.get_state(),
            history=recorder.history,
            arrays=arrays,
        )

    def _restore_checkpoint(
        self, checkpoint: RunCheckpoint
    ) -> tuple[_RunState, np.random.Generator]:
        expected = self._fingerprint()
        if checkpoint.schema != expected:
            diffs = sorted(
                key
                for key in set(expected) | set(checkpoint.schema)
                if expected.get(key) != checkpoint.schema.get(key)
            )
            raise CheckpointError(
                "checkpoint does not match this run configuration; "
                f"differing fields: {diffs}"
            )

        classifier = self.classifier
        arrays = checkpoint.arrays
        try:
            classifier.network.set_weights(
                {
                    key[len("net/"):]: value
                    for key, value in arrays.items()
                    if key.startswith("net/")
                }
            )
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint weights do not fit the {self.config.arch!r} "
                f"network: {exc}"
            ) from exc
        classifier.restore_optimizer_state(
            {
                key[len("optim/"):]: value
                for key, value in arrays.items()
                if key.startswith("optim/")
            }
        )
        classifier.scaler.mean_ = arrays["scaler/mean"]
        classifier.scaler.std_ = arrays["scaler/std"]
        classifier.scaler_version += 1
        classifier._fitted = True
        classifier.set_shuffle_rng_state(checkpoint.shuffle_rng_state)
        self.labeler.set_state(checkpoint.labeler_state)

        temperature = TemperatureScaler()
        temperature.temperature_ = checkpoint.temperature
        sets = checkpoint.index_sets
        state = _RunState(
            posterior=posterior_array(arrays["state/posterior"]),
            train_idx=[int(i) for i in sets["train_idx"]],
            y_train=[int(y) for y in sets["y_train"]],
            val_idx=np.asarray(sets["val_idx"], dtype=np.int64),
            y_val=np.asarray(sets["y_val"], dtype=np.int64),
            pool=[int(i) for i in sets["pool"]],
            temperature=temperature,
            discarded=[int(i) for i in sets["discarded"]],
            batch_hotspot_trace=[int(n) for n in sets["batch_hotspot_trace"]],
            iterations_run=int(sets["iterations_run"]),
        )

        rng = np.random.default_rng(self.config.seed)
        rng.bit_generator.state = checkpoint.rng_state
        return state, rng

    def _maybe_checkpoint(
        self,
        state: _RunState,
        rng: np.random.Generator,
        recorder: HistoryRecorder,
        iteration: int,
    ) -> None:
        cfg = self.config
        if not cfg.checkpoint_every or iteration % cfg.checkpoint_every:
            return
        stage_start = time.perf_counter()
        checkpoint = self._capture_checkpoint(state, rng, recorder, iteration)
        path = save_checkpoint(
            checkpoint,
            Path(cfg.checkpoint_dir) / f"checkpoint_iter{iteration:04d}",
        )
        self.bus.emit(
            "checkpoint_saved",
            iteration=iteration,
            path=str(path),
            checkpoint_seconds=time.perf_counter() - stage_start,
        )
