"""The entropy weighting method (Section III-A3, Eqs. (10)-(13)).

Uncertainty and diversity scores are combined linearly; the weights are
recomputed every iteration from the *dispersion* of each indicator over
the current query set.  An indicator whose normalized scores are nearly
uniform has Shannon entropy close to 1 and carries almost no ranking
information, so it receives weight close to 0; a highly discriminative
indicator receives correspondingly more weight.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract

__all__ = ["minmax_normalize", "index_entropy", "entropy_weights"]


@contract(scores="*[N,M]|*[N]", returns="f8[N,M]")
def minmax_normalize(scores: np.ndarray) -> np.ndarray:
    """Column-wise min-max normalization (Eq. (10)).

    Constant columns map to all-zeros (no information, and the entropy
    weighting downstream assigns them zero weight).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim == 1:
        scores = scores[:, None]
    lo = scores.min(axis=0, keepdims=True)
    hi = scores.max(axis=0, keepdims=True)
    span = hi - lo
    out = np.zeros_like(scores)
    nonconstant = span[0] > 0
    out[:, nonconstant] = (scores[:, nonconstant] - lo[:, nonconstant]) / span[
        :, nonconstant
    ]
    return out


@contract(normalized="*[N,M]", returns="f8[M]")
def index_entropy(normalized: np.ndarray) -> np.ndarray:
    """Per-column entropy E_j of normalized scores (Eqs. (11)-(12)).

    ``q_ij = r_ij / sum_i r_ij`` and ``E_j = -b * sum q ln q`` with
    ``b = 1 / ln n`` so E_j is in [0, 1].  A column summing to zero (all
    scores equal) is defined to have maximal entropy 1: it cannot rank
    anything.
    """
    normalized = np.asarray(normalized, dtype=np.float64)
    if normalized.ndim != 2:
        raise ValueError(f"expected (N, M) scores, got {normalized.shape}")
    n, m = normalized.shape
    if n < 2:
        # a single sample carries no dispersion information
        return np.ones(m)
    b = 1.0 / np.log(n)
    entropies = np.empty(m)
    for j in range(m):
        total = normalized[:, j].sum()
        if total <= 0:
            entropies[j] = 1.0
            continue
        q = normalized[:, j] / total
        nonzero = q > 0
        entropies[j] = float(-b * (q[nonzero] * np.log(q[nonzero])).sum())
    return np.clip(entropies, 0.0, 1.0)


@contract(scores="*[N,M]", returns="f8[M]")
def entropy_weights(scores: np.ndarray) -> np.ndarray:
    """Dynamic indicator weights ``w_j`` (Eq. (13)).

    ``scores`` is ``(n_samples, n_indicators)`` of raw (un-normalized)
    indicator values.  Returns non-negative weights summing to 1.  When
    every indicator is uninformative (all E_j = 1) the weights fall back
    to uniform.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected (N, M) scores, got {scores.shape}")
    m = scores.shape[1]
    if m == 0:
        raise ValueError("need at least one indicator")
    normalized = minmax_normalize(scores)
    entropies = index_entropy(normalized)
    information = 1.0 - entropies
    total = information.sum()
    if total <= 1e-12:
        return np.full(m, 1.0 / m)
    return information / total
