"""EntropySampling — Algorithm 1 of the paper.

Given a query set's *calibrated* probabilities and embedding features,
select the ``k`` samples with the highest entropy-based score

    s_i = w1 * Norm(u_i) + w2 * Norm(d_i)                     (Eq. (9))

where ``u`` is the hotspot-aware calibrated uncertainty (Eq. (6)), ``d``
the min-distance diversity (Eq. (7)) and ``(w1, w2)`` the dynamic entropy
weights (Eq. (13)).  The ablation switches of Table III are exposed as
configuration flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.contracts import contract
from .diversity import diversity_scores
from .entropy_weighting import entropy_weights, minmax_normalize
from .uncertainty import (
    DEFAULT_DECISION_BOUNDARY,
    bvsb_uncertainty,
    entropy_uncertainty,
    hotspot_aware_uncertainty,
)

__all__ = ["SamplingConfig", "SamplingOutcome", "entropy_sampling"]


@dataclass(frozen=True)
class SamplingConfig:
    """Switches of the entropy-based sampler.

    The default configuration is the paper's full method.  Table III's
    ablations map to:

    * ``w/o.E`` — ``use_entropy_weights=False`` (fixed 50/50 weights)
    * ``w/o.D`` — ``use_diversity=False`` (uncertainty only)
    * ``w/o.U`` — ``use_uncertainty=False`` (diversity only)

    and Fig. 6(a)'s fixed-weight sweep sets ``fixed_diversity_weight``.
    """

    h: float = DEFAULT_DECISION_BOUNDARY
    use_uncertainty: bool = True
    use_diversity: bool = True
    use_entropy_weights: bool = True
    fixed_diversity_weight: float | None = None
    #: which uncertainty score feeds Eq. (9): the paper's hotspot-aware
    #: score (default), plain BvSB (Eq. (3)), or prediction entropy —
    #: the design-choice D1 ablation of DESIGN.md
    uncertainty_metric: str = "hotspot_aware"
    #: dynamic-weighting scheme: the paper's entropy weighting
    #: (Eqs. (10)-(13)) or CRITIC (contrast x independence) — an
    #: extension in the spirit of the paper's conclusion
    weighting_method: str = "entropy"

    def __post_init__(self) -> None:
        if not (self.use_uncertainty or self.use_diversity):
            raise ValueError("at least one of uncertainty/diversity required")
        if self.fixed_diversity_weight is not None and not (
            0.0 <= self.fixed_diversity_weight <= 1.0
        ):
            raise ValueError("fixed_diversity_weight must be in [0, 1]")
        if self.uncertainty_metric not in ("hotspot_aware", "bvsb", "entropy"):
            raise ValueError(
                "uncertainty_metric must be 'hotspot_aware', 'bvsb' or "
                f"'entropy', got {self.uncertainty_metric!r}"
            )
        if self.weighting_method not in ("entropy", "critic"):
            raise ValueError(
                "weighting_method must be 'entropy' or 'critic', got "
                f"{self.weighting_method!r}"
            )

    def uncertainty_scores(self, probs: np.ndarray) -> np.ndarray:
        """Uncertainty scores per the configured metric."""
        if self.uncertainty_metric == "bvsb":
            return bvsb_uncertainty(probs)
        if self.uncertainty_metric == "entropy":
            return entropy_uncertainty(probs)
        return hotspot_aware_uncertainty(probs, h=self.h)


@dataclass
class SamplingOutcome:
    """Selected indices plus per-call diagnostics."""

    selected: np.ndarray                 # indices into the query set
    scores: np.ndarray                   # entropy-based score s_i
    uncertainty: np.ndarray              # raw u_i
    diversity: np.ndarray                # raw d_i
    weights: np.ndarray = field(default_factory=lambda: np.array([0.5, 0.5]))


@contract(calibrated_probs="f8[N,2]", embeddings="f8[N,D]")
def entropy_sampling(
    calibrated_probs: np.ndarray,
    embeddings: np.ndarray,
    k: int,
    config: SamplingConfig | None = None,
) -> SamplingOutcome:
    """Algorithm 1: pick ``k`` query samples by entropy-based score.

    Parameters
    ----------
    calibrated_probs:
        ``(n, 2)`` temperature-scaled probabilities of the query set
        (line 1 of Alg. 1 consumes Eq. (5) output).
    embeddings:
        ``(n, d)`` L2-normalized FC-layer features (line 2).
    k:
        Batch size; capped at the query-set size.
    """
    config = config if config is not None else SamplingConfig()
    probs = np.asarray(calibrated_probs, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[1] != 2:
        raise ValueError(f"expected (N, 2) probabilities, got {probs.shape}")
    n = len(probs)
    if len(embeddings) != n:
        raise ValueError("probs and embeddings lengths differ")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, n)
    if n == 0:
        return SamplingOutcome(
            selected=np.zeros(0, dtype=np.int64),
            scores=np.zeros(0),
            uncertainty=np.zeros(0),
            diversity=np.zeros(0),
        )

    # line 1: calibrated uncertainty scores F (hotspot-aware by default)
    uncertainty = config.uncertainty_scores(probs)
    # line 2: min-distance diversity scores D
    diversity = diversity_scores(np.asarray(embeddings, dtype=np.float64))

    use_u = config.use_uncertainty
    use_d = config.use_diversity
    if use_u and use_d:
        stacked = np.column_stack([uncertainty, diversity])
        if config.fixed_diversity_weight is not None:
            w2 = config.fixed_diversity_weight
            weights = np.array([1.0 - w2, w2])
        elif config.use_entropy_weights:
            # line 3: dynamic weights (entropy weighting by default)
            if config.weighting_method == "critic":
                from .critic_weighting import critic_weights

                weights = critic_weights(stacked)
            else:
                weights = entropy_weights(stacked)
        else:
            weights = np.array([0.5, 0.5])
        normalized = minmax_normalize(stacked)
        # line 4: S = w1 * Norm(F) + w2 * Norm(D)
        scores = normalized @ weights
    elif use_u:
        weights = np.array([1.0, 0.0])
        scores = minmax_normalize(uncertainty)[:, 0]
    else:
        weights = np.array([0.0, 1.0])
        scores = minmax_normalize(diversity)[:, 0]

    # line 5: the k highest entropy-based scores (stable for ties)
    selected = np.argsort(-scores, kind="stable")[:k]
    return SamplingOutcome(
        selected=selected.astype(np.int64),
        scores=scores,
        uncertainty=uncertainty,
        diversity=diversity,
        weights=weights,
    )
