"""Uncertainty metrics for active sampling (Section III-A1).

Class convention throughout the package: column 0 = non-hotspot,
column 1 = hotspot.

Three scores are provided:

* :func:`bvsb_uncertainty` — the binary Best-versus-Second-Best baseline
  (Eq. (3)): peaks where the two class probabilities are equal.
* :func:`entropy_uncertainty` — Shannon entropy of the prediction, the
  classic alternative.
* :func:`hotspot_aware_uncertainty` — the paper's contribution (Eq. (6)):
  a piecewise score around the decision boundary ``h`` that (a) peaks for
  samples near the boundary and (b) always ranks hotspot-side samples
  above non-hotspot-side ones, reflecting that on heavily imbalanced
  benchmarks the minority hotspot class deserves priority.  Intended to
  be fed *calibrated* probabilities (Eq. (5)) so that "probability" means
  what it claims.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract

__all__ = [
    "bvsb_uncertainty",
    "entropy_uncertainty",
    "hotspot_aware_uncertainty",
    "DEFAULT_DECISION_BOUNDARY",
]

#: the paper fixes h = 0.4 "since the datasets are imbalanced"
DEFAULT_DECISION_BOUNDARY = 0.4


def _check_probs(probs: np.ndarray) -> np.ndarray:
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[1] != 2:
        raise ValueError(f"expected (N, 2) probabilities, got {probs.shape}")
    if len(probs) and (probs.min() < -1e-9 or probs.max() > 1 + 1e-9):
        raise ValueError("probabilities must lie in [0, 1]")
    return probs


@contract(probs="f8[N,2]", returns="f8[N]")
def bvsb_uncertainty(probs: np.ndarray) -> np.ndarray:
    """Binary BvSB score ``u = 1 - |p0 - p1|`` (Eq. (3)).

    1 at a 50/50 prediction, 0 at full confidence.
    """
    probs = _check_probs(probs)
    return 1.0 - np.abs(probs[:, 0] - probs[:, 1])


@contract(probs="f8[N,2]", returns="f8[N]")
def entropy_uncertainty(probs: np.ndarray) -> np.ndarray:
    """Prediction entropy in nats (0 for one-hot, ln 2 for uniform)."""
    probs = _check_probs(probs)
    clipped = np.clip(probs, 1e-12, 1.0)
    return -(clipped * np.log(clipped)).sum(axis=1)


@contract(probs="f8[N,2]", returns="f8[N]")
def hotspot_aware_uncertainty(
    probs: np.ndarray, h: float = DEFAULT_DECISION_BOUNDARY
) -> np.ndarray:
    """Hotspot-aware calibrated uncertainty score (Eq. (6)).

    With ``p1`` the (calibrated) hotspot probability::

        u = p0 + h   if p1 > h     (hotspot side: score in (h, 1])
        u = p1       if p1 <= h    (non-hotspot side: score in [0, h])

    The score is continuous at ``p1 = h`` (both branches give ``1``...
    more precisely ``p0 + h = 1 - h + h = 1`` and ``p1 = h`` — the jump
    from ``h`` to ``1`` exactly encodes the preference for hotspot-side
    samples), peaks just above the boundary, and decays as predictions
    become confident on either side.
    """
    probs = _check_probs(probs)
    if not 0.0 < h < 1.0:
        raise ValueError(f"decision boundary h must be in (0, 1), got {h}")
    p_nonhot = probs[:, 0]
    p_hot = probs[:, 1]
    return np.where(p_hot > h, p_nonhot + h, p_hot)
