"""PSHD evaluation metrics (Section II, Eqs. (1)-(2)) and runtime model.

* ``Acc``  = (#HS_Train + #HS_Val + #Hits) / #HS_Total        (Eq. (1))
* ``Litho`` = #Tr + #Val + #FA                                 (Eq. (2))

A *hit* is a correctly reported hotspot among the clips that stayed
unlabeled; a *false alarm* (extra) is a clean clip reported hotspot —
the flow must lithography-verify it, so it adds to the overhead.  Hits
are intentionally **not** charged: verifying a real hotspot is the
productive outcome the flow exists to buy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..litho.labeler import SECONDS_PER_LITHO_CLIP

__all__ = ["pshd_accuracy", "litho_overhead", "overall_runtime", "PSHDResult"]


def pshd_accuracy(
    hs_train: int, hs_val: int, hits: int, hs_total: int
) -> float:
    """Detection accuracy per Eq. (1).

    Hotspots already captured into the training/validation sets count as
    found (they were litho-verified), plus hits on the unlabeled rest.
    A benchmark with no hotspots scores 1.0 by convention.
    """
    for name, value in (("hs_train", hs_train), ("hs_val", hs_val),
                        ("hits", hits), ("hs_total", hs_total)):
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    if hs_train + hs_val + hits > hs_total:
        raise ValueError("found hotspots exceed total")
    if hs_total == 0:
        return 1.0
    return (hs_train + hs_val + hits) / hs_total


def litho_overhead(n_train: int, n_val: int, false_alarms: int) -> int:
    """Lithography simulation overhead per Eq. (2)."""
    for name, value in (("n_train", n_train), ("n_val", n_val),
                        ("false_alarms", false_alarms)):
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    return n_train + n_val + false_alarms


def overall_runtime(litho_count: int, pshd_seconds: float) -> float:
    """Runtime model of Section IV-C (Fig. 6(b)).

    10 s of charged lithography per litho-clip plus the measured PSHD
    compute overhead (training + sampling + inference).
    """
    if litho_count < 0:
        raise ValueError(f"litho_count must be non-negative, got {litho_count}")
    if pshd_seconds < 0:
        raise ValueError(f"pshd_seconds must be non-negative, got {pshd_seconds}")
    return SECONDS_PER_LITHO_CLIP * litho_count + pshd_seconds


@dataclass
class PSHDResult:
    """Outcome of one PSHD run (any method)."""

    benchmark: str
    method: str
    accuracy: float
    litho: int
    hits: int = 0
    false_alarms: int = 0
    n_train: int = 0
    n_val: int = 0
    hs_total: int = 0
    iterations: int = 0
    pshd_seconds: float = 0.0
    history: list[dict] = field(default_factory=list)
    #: indices of all litho-labeled clips (train + val), for layout maps
    labeled: np.ndarray | None = None
    #: GuardReport.as_dict() of a supervised run (None when the guard
    #: was disabled); see repro.engine.guard
    guard: dict | None = None

    @property
    def runtime_seconds(self) -> float:
        """Modelled end-to-end runtime (Fig. 6(b))."""
        return overall_runtime(self.litho, self.pshd_seconds)

    def row(self) -> tuple[str, float, int]:
        """(benchmark, Acc%, Litho#) — one cell group of Table II."""
        return (self.benchmark, 100.0 * self.accuracy, self.litho)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.method} on {self.benchmark}: "
            f"Acc={100 * self.accuracy:.2f}% Litho#={self.litho}"
        )
