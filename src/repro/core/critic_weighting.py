"""CRITIC weighting: an alternative to the entropy weighting method.

The paper's conclusion invites "novel sampling strategies in terms of
uncertainty and diversity metrics from different methods".  CRITIC
(CRiteria Importance Through Intercriteria Correlation, Diakoulaki et
al. 1995) is the other standard objective weighting scheme: an
indicator's weight grows with its *contrast* (standard deviation of
normalized scores) and with its *independence* from the other
indicators (1 - correlation).  Compared with entropy weighting it
rewards an indicator for disagreeing with the others, not only for
being discriminative on its own.

Usable as a drop-in replacement via
``SamplingConfig``-style composition (see tests and the extended
benches); exposed with the same ``(n_samples, n_indicators) -> weights``
contract as :func:`repro.core.entropy_weighting.entropy_weights`.
"""

from __future__ import annotations

import numpy as np

from .entropy_weighting import minmax_normalize

__all__ = ["critic_weights"]


def critic_weights(scores: np.ndarray) -> np.ndarray:
    """CRITIC weights of raw indicator scores.

    ``scores`` is ``(n_samples, n_indicators)``.  Returns non-negative
    weights summing to 1; degenerate inputs (constant indicators, fewer
    than two samples) fall back to uniform weights.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected (N, M) scores, got {scores.shape}")
    n, m = scores.shape
    if m == 0:
        raise ValueError("need at least one indicator")
    if n < 2:
        return np.full(m, 1.0 / m)

    normalized = minmax_normalize(scores)
    contrast = normalized.std(axis=0)
    if np.all(contrast <= 1e-12):
        return np.full(m, 1.0 / m)

    if m == 1:
        return np.array([1.0])

    # correlation with a constant column is undefined; define it as 0
    # (a constant cannot explain a varying indicator), keeping the
    # constant itself at zero weight through its zero contrast
    varying = contrast > 1e-12
    corr = np.zeros((m, m))
    np.fill_diagonal(corr, 1.0)
    if varying.sum() >= 2:
        sub = np.corrcoef(normalized[:, varying].T)
        corr[np.ix_(varying, varying)] = sub
    independence = (1.0 - corr).clip(min=0.0).sum(axis=1)
    information = contrast * independence
    total = information.sum()
    if total <= 1e-12:
        return np.full(m, 1.0 / m)
    return information / total
