"""Diversity metric for batch sampling (Section III-A2).

The QP diversity of Yang et al. (TCAD'20) solves a relaxed quadratic
program per batch; the paper replaces it with a direct per-sample score:
the distance to the nearest other sample in the query set, measured with
the normalized-inner-product distance

    D_ij = 1 - x_i^T x_j                                     (Eq. (8))
    d_i  = min_{x in Q \\ x_i} dist(x_i, x)                  (Eq. (7))

on L2-normalized FC-layer embeddings.  Isolated samples (far from every
cluster) receive high scores; redundant near-duplicates receive ~0.
Cost is one n x n Gram matrix — the 18x runtime win of Fig. 3(b).
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract

__all__ = ["diversity_matrix", "diversity_scores"]


def _check_features(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"expected (N, D) features, got {features.shape}")
    return features


@contract(features="f8[N,D]", returns="f8[N,N]")
def diversity_matrix(features: np.ndarray, assume_normalized: bool = True) -> np.ndarray:
    """Pairwise distance matrix ``D_ij = 1 - x_i . x_j`` (Eq. (8)).

    With unit-norm inputs the diagonal is 0 and off-diagonal entries lie
    in [0, 2] (in [0, 1] for non-negative ReLU features).  Set
    ``assume_normalized=False`` to have rows normalized here.
    """
    features = _check_features(features)
    if not assume_normalized:
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        features = features / np.maximum(norms, 1e-12)
    return 1.0 - features @ features.T


@contract(features="f8[N,D]", returns="f8[N]")
def diversity_scores(
    features: np.ndarray, assume_normalized: bool = True
) -> np.ndarray:
    """Per-sample diversity ``d_i = min_j != i  D_ij`` (Eq. (7)).

    Returns zeros for a single-sample query set (no neighbour exists).
    """
    features = _check_features(features)
    n = len(features)
    if n == 0:
        return np.zeros(0)
    if n == 1:
        return np.zeros(1)
    distance = diversity_matrix(features, assume_normalized=assume_normalized)
    np.fill_diagonal(distance, np.inf)
    return distance.min(axis=1)
