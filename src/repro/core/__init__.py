"""The paper's contribution (S9): calibrated hotspot-aware uncertainty,
min-distance diversity, entropy weighting, EntropySampling (Alg. 1),
the PSHD framework (Alg. 2) and the PSHD metrics (Eqs. (1)-(2))."""

from .critic_weighting import critic_weights
from .diversity import diversity_matrix, diversity_scores
from .entropy_weighting import entropy_weights, index_entropy, minmax_normalize
from .framework import FrameworkConfig, PSHDFramework, SelectionContext
from .metrics import PSHDResult, litho_overhead, overall_runtime, pshd_accuracy
from .sampling import SamplingConfig, SamplingOutcome, entropy_sampling
from .stopping import (
    AnyOf,
    HotspotYieldStall,
    LithoBudget,
    LoopState,
    MaxIterations,
    StoppingCriterion,
    UncertaintyExhausted,
)
from .uncertainty import (
    DEFAULT_DECISION_BOUNDARY,
    bvsb_uncertainty,
    entropy_uncertainty,
    hotspot_aware_uncertainty,
)

__all__ = [
    "bvsb_uncertainty",
    "entropy_uncertainty",
    "hotspot_aware_uncertainty",
    "DEFAULT_DECISION_BOUNDARY",
    "diversity_matrix",
    "diversity_scores",
    "minmax_normalize",
    "index_entropy",
    "entropy_weights",
    "critic_weights",
    "SamplingConfig",
    "SamplingOutcome",
    "entropy_sampling",
    "pshd_accuracy",
    "litho_overhead",
    "overall_runtime",
    "PSHDResult",
    "FrameworkConfig",
    "PSHDFramework",
    "SelectionContext",
    "LoopState",
    "StoppingCriterion",
    "MaxIterations",
    "LithoBudget",
    "UncertaintyExhausted",
    "HotspotYieldStall",
    "AnyOf",
]
