"""Stopping criteria for the active-learning loop.

Algorithm 2 runs "until the termination condition is satisfied" without
pinning that condition down.  This module supplies the standard choices
as composable predicates; :class:`~repro.core.framework.FrameworkConfig`
takes one through its ``stop_when`` field (the default reproduces the
fixed-N behaviour of the experiments).

A criterion is called once per iteration *before* sampling with a
:class:`LoopState` snapshot and returns True to stop.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LoopState",
    "StoppingCriterion",
    "MaxIterations",
    "LithoBudget",
    "UncertaintyExhausted",
    "HotspotYieldStall",
    "AnyOf",
]


@dataclass
class LoopState:
    """Snapshot handed to stopping criteria at the top of an iteration."""

    iteration: int                  # 1-based index of the upcoming iteration
    litho_used: int                 # labels charged so far
    pool_size: int                  # unlabeled clips remaining
    max_uncertainty: float          # highest calibrated uncertainty in pool
    recent_batch_hotspots: list     # hotspots found by the last batches


class StoppingCriterion:
    """Base: never stops."""

    def should_stop(self, state: LoopState) -> bool:
        del state
        return False

    def __call__(self, state: LoopState) -> bool:
        return self.should_stop(state)


@dataclass
class MaxIterations(StoppingCriterion):
    """Stop after ``n`` completed iterations (the paper's fixed N)."""

    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")

    def should_stop(self, state: LoopState) -> bool:
        return state.iteration > self.n


@dataclass
class LithoBudget(StoppingCriterion):
    """Stop once the litho-clip spend reaches ``budget``."""

    budget: int

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")

    def should_stop(self, state: LoopState) -> bool:
        return state.litho_used >= self.budget


@dataclass
class UncertaintyExhausted(StoppingCriterion):
    """Stop when no pool sample is meaningfully uncertain any more.

    ``threshold`` is on the hotspot-aware score of Eq. (6): once the
    most uncertain candidate scores below it, further labeling buys
    little information.
    """

    threshold: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"threshold must be in (0, 1), got {self.threshold}"
            )

    def should_stop(self, state: LoopState) -> bool:
        return state.max_uncertainty < self.threshold


@dataclass
class HotspotYieldStall(StoppingCriterion):
    """Stop after ``window`` consecutive batches found no hotspots."""

    window: int = 3

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")

    def should_stop(self, state: LoopState) -> bool:
        recent = state.recent_batch_hotspots[-self.window :]
        return len(recent) >= self.window and sum(recent) == 0


class AnyOf(StoppingCriterion):
    """Stop when any member criterion fires."""

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("AnyOf requires at least one criterion")
        self.criteria = criteria

    def should_stop(self, state: LoopState) -> bool:
        return any(c.should_stop(state) for c in self.criteria)
