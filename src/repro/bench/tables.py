"""Regenerators for the paper's tables.

* Table I  — benchmark statistics.
* Table II — full PSHD comparison (PM-exact/a95/a90/e2, TS, QP, Ours).
* Table III — component ablation (w/o.E, w/o.D, w/o.U, Full).

Every function returns ``(rows, rendered_text)``; the text mirrors the
paper's layout including the Average and Ratio summary rows.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.framework import PSHDFramework
from ..core.sampling import SamplingConfig
from ..data.benchmarks import BENCHMARKS
from .harness import (
    EVAL_BENCHMARKS,
    base_framework_config,
    bench_seeds,
    format_table,
    load_dataset,
    run_method_averaged,
)

__all__ = ["table1", "table2", "table3", "TABLE2_METHODS", "TABLE3_VARIANTS"]

TABLE2_METHODS = ("pm-exact", "pm-a95", "pm-a90", "pm-e2", "ts", "qp", "ours")

#: Table III ablation variants -> Alg. 1 sampling configuration
TABLE3_VARIANTS = {
    "w/o.E": SamplingConfig(use_entropy_weights=False),
    "w/o.D": SamplingConfig(use_diversity=False),
    "w/o.U": SamplingConfig(use_uncertainty=False),
    "Full": SamplingConfig(),
}


def table1() -> tuple[list[list], str]:
    """Table I: HS#/NHS#/Tech of every benchmark (paper and built)."""
    rows = []
    for name, spec in BENCHMARKS.items():
        if name == "iccad16-1":
            dataset = load_dataset_16_1()
        elif name in EVAL_BENCHMARKS:
            dataset = load_dataset(name)
        else:
            continue
        rows.append(
            [
                name,
                spec.paper_hotspots,
                spec.paper_nonhotspots,
                dataset.n_hotspots,
                dataset.n_nonhotspots,
                spec.rules.tech_nm,
            ]
        )
    text = format_table(
        ["Benchmark", "paper HS#", "paper NHS#", "built HS#", "built NHS#",
         "Tech(nm)"],
        rows,
    )
    return rows, text


def load_dataset_16_1():
    """ICCAD16-1 at full scale (63 clips, zero hotspots)."""
    from ..data.benchmarks import build_benchmark

    return build_benchmark("iccad16-1", scale=1.0, seed=0)


def table2(
    methods=TABLE2_METHODS, benchmarks=EVAL_BENCHMARKS, seeds: int | None = None
) -> tuple[dict, str]:
    """Table II: Acc%/Litho# per method per benchmark + Average/Ratio."""
    seeds = seeds if seeds is not None else bench_seeds()
    results: dict[str, dict[str, tuple[float, float]]] = {m: {} for m in methods}
    for name in benchmarks:
        dataset = load_dataset(name)
        for method in methods:
            acc, litho, _ = run_method_averaged(
                dataset, method, name, seeds=seeds
            )
            results[method][name] = (acc, litho)

    # per-method averages and ratios vs "ours"
    averages = {
        m: (
            float(np.mean([results[m][b][0] for b in benchmarks])),
            float(np.mean([results[m][b][1] for b in benchmarks])),
        )
        for m in methods
    }
    ours_acc, ours_litho = averages.get("ours", averages[methods[-1]])

    headers = ["Benchmark"]
    for method in methods:
        headers += [f"{method} Acc%", f"{method} Litho#"]
    rows = []
    for name in benchmarks:
        row = [name]
        for method in methods:
            acc, litho = results[method][name]
            row += [100.0 * acc, int(round(litho))]
        rows.append(row)
    avg_row = ["Average"]
    ratio_row = ["Ratio"]
    for method in methods:
        acc, litho = averages[method]
        avg_row += [100.0 * acc, int(round(litho))]
        ratio_row += [
            round(acc / ours_acc, 3) if ours_acc else 0.0,
            round(litho / ours_litho, 3) if ours_litho else 0.0,
        ]
    rows.append(avg_row)
    rows.append(ratio_row)
    return results, format_table(headers, rows)


def table3(
    benchmarks=EVAL_BENCHMARKS, seeds: int | None = None
) -> tuple[dict, str]:
    """Table III: ablation of the entropy-based method's components."""
    seeds = seeds if seeds is not None else bench_seeds()
    results: dict[str, dict[str, tuple[float, float]]] = {
        v: {} for v in TABLE3_VARIANTS
    }
    for name in benchmarks:
        dataset = load_dataset(name)
        for variant, sampling in TABLE3_VARIANTS.items():
            accs, lithos = [], []
            for seed in range(seeds):
                cfg = replace(
                    base_framework_config(name, seed),
                    sampling=sampling,
                    method_name=variant,
                )
                result = PSHDFramework(dataset, cfg).run()
                accs.append(result.accuracy)
                lithos.append(result.litho)
            results[variant][name] = (
                float(np.mean(accs)),
                float(np.mean(lithos)),
            )

    averages = {
        v: (
            float(np.mean([results[v][b][0] for b in benchmarks])),
            float(np.mean([results[v][b][1] for b in benchmarks])),
        )
        for v in TABLE3_VARIANTS
    }
    full_acc, full_litho = averages["Full"]

    headers = ["Benchmark"]
    for variant in TABLE3_VARIANTS:
        headers += [f"{variant} Acc%", f"{variant} Litho#"]
    rows = []
    for name in benchmarks:
        row = [name]
        for variant in TABLE3_VARIANTS:
            acc, litho = results[variant][name]
            row += [100.0 * acc, int(round(litho))]
        rows.append(row)
    avg_row = ["Average"]
    ratio_row = ["Ratio"]
    for variant in TABLE3_VARIANTS:
        acc, litho = averages[variant]
        avg_row += [100.0 * acc, int(round(litho))]
        ratio_row += [
            round(acc / full_acc, 3) if full_acc else 0.0,
            round(litho / full_litho, 3) if full_litho else 0.0,
        ]
    rows.append(avg_row)
    rows.append(ratio_row)
    return results, format_table(headers, rows)
