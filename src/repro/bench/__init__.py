"""Experiment harness (S11) reproducing every table and figure of the
paper's evaluation; see DESIGN.md §3 for the experiment index."""

from .figures import (
    fig2_reliability,
    fig3_diversity,
    fig4_tradeoff,
    fig5_layout,
    fig6a_weights,
    fig6b_runtime,
)
from .harness import (
    BENCH_SETTINGS,
    EVAL_BENCHMARKS,
    BenchSetting,
    base_framework_config,
    bench_seeds,
    format_table,
    load_dataset,
    run_method,
    run_method_averaged,
    run_method_instrumented,
    write_report,
)
from .store import ResultStore
from .tables import TABLE2_METHODS, TABLE3_VARIANTS, table1, table2, table3

__all__ = [
    "BenchSetting",
    "BENCH_SETTINGS",
    "EVAL_BENCHMARKS",
    "load_dataset",
    "base_framework_config",
    "bench_seeds",
    "run_method",
    "run_method_instrumented",
    "run_method_averaged",
    "format_table",
    "write_report",
    "ResultStore",
    "table1",
    "table2",
    "table3",
    "TABLE2_METHODS",
    "TABLE3_VARIANTS",
    "fig2_reliability",
    "fig3_diversity",
    "fig4_tradeoff",
    "fig5_layout",
    "fig6a_weights",
    "fig6b_runtime",
]
