"""Experiment harness shared by the table/figure benchmarks.

Centralizes the per-benchmark experiment settings (dataset scale and
active-learning budgets), method dispatch (active-learning framework vs
pattern matching), seed averaging, and plain-text table rendering, so
each ``benchmarks/bench_*.py`` stays a thin driver.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``    multiplies every dataset scale (default 1.0).
``REPRO_BENCH_SEEDS``    number of seeds averaged per AL method (default 2).
``REPRO_BENCH_WORKERS``  data-plane pool width for dataset builds
                         (default 0 = in-process).
``REPRO_BENCH_CHUNK``    data-plane chunk size (default 64).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..core.framework import FrameworkConfig, PSHDFramework
from ..core.metrics import PSHDResult
from ..data.benchmarks import build_benchmark
from ..data.dataset import ClipDataset
from ..dataplane import DataPlaneConfig
from ..engine import EventBus, EventLog, get_method

__all__ = [
    "BenchSetting",
    "BENCH_SETTINGS",
    "bench_scale_factor",
    "bench_seeds",
    "bench_dataplane_config",
    "load_dataset",
    "base_framework_config",
    "run_method",
    "run_method_instrumented",
    "run_method_averaged",
    "format_table",
    "write_report",
]


@dataclass(frozen=True)
class BenchSetting:
    """Per-benchmark experiment configuration.

    ``scale`` reproduces a CPU-sized slice of the paper benchmark;
    the remaining fields are the Algorithm 2 budgets chosen so the
    labeled fraction is comparable to Table II (see EXPERIMENTS.md).
    """

    scale: float
    n_query: int
    k_batch: int
    n_iterations: int
    init_train: int
    val_size: int


BENCH_SETTINGS: dict[str, BenchSetting] = {
    "iccad12": BenchSetting(0.01, 300, 25, 8, 40, 30),
    "iccad16-2": BenchSetting(0.30, 120, 15, 8, 40, 30),
    "iccad16-3": BenchSetting(0.15, 300, 25, 8, 40, 30),
    "iccad16-4": BenchSetting(0.25, 200, 20, 8, 40, 30),
}

#: benchmark cases evaluated in Tables II/III (ICCAD16-1 has no hotspots
#: and is skipped, exactly as the paper does)
EVAL_BENCHMARKS = ("iccad12", "iccad16-2", "iccad16-3", "iccad16-4")


def bench_scale_factor() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_seeds() -> int:
    return max(int(os.environ.get("REPRO_BENCH_SEEDS", "2")), 1)


def bench_dataplane_config() -> DataPlaneConfig:
    """Data-plane settings for dataset builds, from the environment."""
    return DataPlaneConfig(
        chunk_size=max(int(os.environ.get("REPRO_BENCH_CHUNK", "64")), 1),
        workers=max(int(os.environ.get("REPRO_BENCH_WORKERS", "0")), 0),
    )


def load_dataset(name: str, seed: int = 0) -> ClipDataset:
    """Benchmark dataset at its bench-standard scale (cached on disk)."""
    setting = BENCH_SETTINGS[name]
    return build_benchmark(
        name,
        scale=setting.scale * bench_scale_factor(),
        seed=seed,
        dataplane=bench_dataplane_config(),
    )


def base_framework_config(name: str, seed: int = 0) -> FrameworkConfig:
    setting = BENCH_SETTINGS[name]
    return FrameworkConfig(
        n_query=setting.n_query,
        k_batch=setting.k_batch,
        n_iterations=setting.n_iterations,
        init_train=setting.init_train,
        val_size=setting.val_size,
        arch="mlp",
        epochs_initial=30,
        epochs_update=8,
        seed=seed,
    )


def run_method(
    dataset: ClipDataset, method: str, name: str, seed: int = 0,
    config: FrameworkConfig | None = None, bus: EventBus | None = None,
) -> PSHDResult:
    """Run one Table II method on one benchmark dataset.

    ``method`` is any name in the engine method registry: an AL method
    (``ours``/``ts``/``qp``/``random``/``kcenter``/...) or a
    pattern-matching flow (``pm-exact`` etc.).  ``bus`` lets callers
    subscribe instrumentation to any run; PM flows report a summary
    ``labels_computed`` event, AL runs emit the full stage trace.
    """
    spec = get_method(method)
    if not spec.is_framework_method:
        return spec.run(dataset, seed=seed, bus=bus)
    base = config if config is not None else base_framework_config(name, seed)
    return PSHDFramework(dataset, spec.build_config(base), bus=bus).run()


def run_method_instrumented(
    dataset: ClipDataset, method: str, name: str, seed: int = 0,
    config: FrameworkConfig | None = None,
) -> tuple[PSHDResult, EventLog]:
    """Like :func:`run_method`, returning the full event trace as well.

    The :class:`EventLog` carries per-stage timings
    (``EventLog.stage_seconds()``) and litho counts for benchmark
    instrumentation; AL methods emit the full stage trace plus
    ``labels_computed`` label-cache events, a PM flow emits one summary
    ``labels_computed`` event.
    """
    bus = EventBus()
    log = bus.subscribe(EventLog())
    result = run_method(dataset, method, name, seed=seed, config=config,
                        bus=bus)
    return result, log


def run_method_averaged(
    dataset: ClipDataset, method: str, name: str, seeds: int | None = None
) -> tuple[float, float, list[PSHDResult]]:
    """Mean (accuracy, litho) of ``method`` over several seeds."""
    seeds = seeds if seeds is not None else bench_seeds()
    results = [
        run_method(dataset, method, name, seed=seed) for seed in range(seeds)
    ]
    acc = float(np.mean([r.accuracy for r in results]))
    litho = float(np.mean([r.litho for r in results]))
    return acc, litho, results


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text aligned table (paper-style)."""
    cells = [[str(h) for h in headers]]
    cells.extend([[_fmt(v) for v in row] for row in rows])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        lines.append(line)
        if r == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def write_report(name: str, content: str) -> None:
    """Persist a rendered table/figure under ``benchmarks/out`` and echo
    it so the pytest log carries the artifact."""
    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(content + "\n")
    print(f"\n[{name}]\n{content}")
