"""Persistent JSON store for experiment results.

Experiment campaigns accumulate :class:`~repro.core.metrics.PSHDResult`
records across sessions; this store serializes them to a JSON-lines
file keyed by (benchmark, method, seed) so the report CLI can aggregate
without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.metrics import PSHDResult

__all__ = ["ResultStore"]


def _result_to_dict(result: PSHDResult, seed: int) -> dict:
    return {
        "benchmark": result.benchmark,
        "method": result.method,
        "seed": seed,
        "accuracy": result.accuracy,
        "litho": result.litho,
        "hits": result.hits,
        "false_alarms": result.false_alarms,
        "n_train": result.n_train,
        "n_val": result.n_val,
        "hs_total": result.hs_total,
        "iterations": result.iterations,
        "pshd_seconds": result.pshd_seconds,
        "history": result.history,
    }


def _dict_to_result(record: dict) -> PSHDResult:
    fields = {k: v for k, v in record.items() if k != "seed"}
    return PSHDResult(**fields)


class ResultStore:
    """Append-only JSON-lines result log with query helpers."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(self, result: PSHDResult, seed: int = 0) -> None:
        """Record one run (history is preserved; labeled set is not)."""
        record = _result_to_dict(result, seed)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")

    def load(self) -> list[dict]:
        """All records, oldest first; missing file -> empty list."""
        if not self.path.exists():
            return []
        records = []
        for lineno, line in enumerate(self.path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{self.path}:{lineno}: corrupt record: {exc}"
                ) from None
        return records

    def results(
        self, benchmark: str | None = None, method: str | None = None
    ) -> list[PSHDResult]:
        """Deserialized results, optionally filtered."""
        out = []
        for record in self.load():
            if benchmark is not None and record["benchmark"] != benchmark:
                continue
            if method is not None and record["method"] != method:
                continue
            out.append(_dict_to_result(record))
        return out

    def summarize(self) -> dict:
        """Mean (accuracy, litho) per (benchmark, method) pair."""
        groups: dict[tuple[str, str], list[tuple[float, int]]] = {}
        for record in self.load():
            key = (record["benchmark"], record["method"])
            groups.setdefault(key, []).append(
                (record["accuracy"], record["litho"])
            )
        return {
            key: (
                float(np.mean([a for a, _ in values])),
                float(np.mean([l for _, l in values])),
            )
            for key, values in groups.items()
        }
