"""Regenerators for the paper's figures.

* Fig. 2 — reliability diagrams before/after temperature scaling.
* Fig. 3 — diversity-metric visualization and runtime vs the QP metric.
* Fig. 4 — accuracy / litho-overhead trade-off curves per method.
* Fig. 5 — layout map of hotspots and litho-sampled clips per method.
* Fig. 6 — fixed vs dynamic entropy weights, and the overall runtime
  model across methods.

Each generator returns ``(data, rendered_text)``; rendering is plain
text (tables and ASCII maps) so the artifacts live in the pytest log
and ``benchmarks/out``.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..baselines import make_config, run_pattern_matching
from ..baselines.qp import solve_qp_relaxation
from ..calibration import TemperatureScaler, reliability_diagram
from ..core.diversity import diversity_scores
from ..core.framework import PSHDFramework
from ..core.metrics import overall_runtime
from ..core.sampling import SamplingConfig
from ..model.classifier import HotspotClassifier
from ..nn.losses import softmax
from ..stats.pca import PCA
from .harness import base_framework_config, format_table, load_dataset

__all__ = [
    "fig2_reliability",
    "fig3_diversity",
    "fig4_tradeoff",
    "fig5_layout",
    "fig6a_weights",
    "fig6b_runtime",
]


# ----------------------------------------------------------------------
# Fig. 2 — reliability diagrams
# ----------------------------------------------------------------------

def fig2_reliability(benchmark: str = "iccad16-3", seed: int = 0):
    """Train the CNN on a split and measure calibration before/after
    temperature scaling (10 equally spaced confidence bins)."""
    dataset = load_dataset(benchmark)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    split = int(0.5 * len(dataset))
    train, rest = order[:split], order[split:]
    val, test = rest[: len(rest) // 3], rest[len(rest) // 3 :]

    clf = HotspotClassifier(
        input_shape=dataset.tensors.shape[1:], arch="mlp", epochs=25, seed=seed
    )
    clf.fit_scaler(dataset.tensors)
    clf.fit(dataset.tensors[train], dataset.labels[train])

    val_logits = clf.predict_logits(dataset.tensors[val])
    scaler = TemperatureScaler().fit(val_logits, dataset.labels[val])

    test_logits = clf.predict_logits(dataset.tensors[test])
    y = dataset.labels[test]
    before = reliability_diagram(softmax(test_logits), y)
    after = reliability_diagram(scaler.transform(test_logits), y)

    rows = []
    for (center, conf_b, acc_b, n_b), (_, conf_a, acc_a, _) in zip(
        before.to_rows(), after.to_rows()
    ):
        rows.append(
            [
                f"{center:.2f}",
                _nan(conf_b), _nan(acc_b), _nan(abs(conf_b - acc_b)),
                _nan(conf_a), _nan(acc_a), _nan(abs(conf_a - acc_a)),
                n_b,
            ]
        )
    text = format_table(
        ["bin", "conf(orig)", "acc(orig)", "gap(orig)",
         "conf(cal)", "acc(cal)", "gap(cal)", "count"],
        rows,
    )
    summary = (
        f"T = {scaler.temperature_:.3f} | "
        f"ECE original = {before.ece:.4f} -> calibrated = {after.ece:.4f} | "
        f"MCE original = {before.mce:.4f} -> calibrated = {after.mce:.4f}"
    )
    return (before, after, scaler.temperature_), text + "\n" + summary


def _nan(x: float) -> str:
    return "-" if np.isnan(x) else f"{x:.3f}"


# ----------------------------------------------------------------------
# Fig. 3 — diversity visualization + runtime comparison
# ----------------------------------------------------------------------

def fig3_diversity(seed: int = 0, n_points: int = 240, repeats: int = 20):
    """(a) which points the diversity metric flags on clustered data;
    (b) wall-clock of our metric vs the relaxed-QP diversity."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(4, 6)) * 3.0
    points = np.vstack(
        [c + rng.normal(scale=0.4, size=(n_points // 4, 6)) for c in centers]
    )
    unit = points / np.maximum(
        np.linalg.norm(points, axis=1, keepdims=True), 1e-12
    )
    scores = diversity_scores(unit)
    high = scores >= np.quantile(scores, 0.9)

    coords = PCA(2).fit_transform(points)
    ascii_map = _ascii_scatter(coords, high, width=64, height=20)

    # (b) runtime: our metric vs QP relaxation on a realistic query set
    query = rng.normal(size=(200, 250))
    query /= np.maximum(np.linalg.norm(query, axis=1, keepdims=True), 1e-12)
    kernel = query @ query.T
    uncertainty = rng.uniform(size=200)

    t0 = time.perf_counter()
    for _ in range(repeats):
        diversity_scores(query)
    ours_s = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    for _ in range(repeats):
        solve_qp_relaxation(kernel, uncertainty, k=20)
    qp_s = (time.perf_counter() - t0) / repeats

    text = (
        "(a) high-diversity points (O) sit off-cluster / at cluster edges:\n"
        + ascii_map
        + "\n\n(b) diversity runtime on a 200x250 query set "
        + f"(mean of {repeats}):\n"
        + f"    ours {ours_s * 1e4:.2f} x1e-4 s   QP {qp_s * 1e4:.2f} x1e-4 s"
        + f"   speedup x{qp_s / ours_s:.1f}"
        + "\n    (paper Fig. 3b: ours 8.28 x1e-4 s, QP 153.97 x1e-4 s,"
        + " speedup x18.6)"
    )
    return {"ours_seconds": ours_s, "qp_seconds": qp_s,
            "high_diversity_mask": high}, text


def _ascii_scatter(coords, highlight, width=64, height=20):
    lo = coords.min(axis=0)
    hi = coords.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    canvas = [[" "] * width for _ in range(height)]
    for (x, y), is_high in zip(coords, highlight):
        col = min(int((x - lo[0]) / span[0] * (width - 1)), width - 1)
        row = min(int((y - lo[1]) / span[1] * (height - 1)), height - 1)
        cell = canvas[height - 1 - row][col]
        mark = "O" if is_high else "."
        if cell != "O":  # highlights win the cell
            canvas[height - 1 - row][col] = mark
    return "\n".join("".join(row) for row in canvas)


# ----------------------------------------------------------------------
# Fig. 4 — accuracy vs litho trade-off
# ----------------------------------------------------------------------

def fig4_tradeoff(
    benchmark: str = "iccad16-2",
    methods=("ours", "qp", "ts"),
    iteration_grid=(4, 6, 8),
    seeds: int = 2,
):
    """Sweep labeling budgets per method and trace (accuracy, litho)."""
    dataset = load_dataset(benchmark)
    series: dict[str, list[tuple[float, float]]] = {m: [] for m in methods}
    for method in methods:
        for iters in iteration_grid:
            for seed in range(seeds):
                base = replace(
                    base_framework_config(benchmark, seed),
                    n_iterations=iters,
                )
                cfg = make_config(method, base)
                result = PSHDFramework(dataset, cfg).run()
                series[method].append((result.accuracy, float(result.litho)))

    rows = []
    for method, points in series.items():
        for acc, litho in sorted(points):
            rows.append([method, 100.0 * acc, int(litho)])
    text = format_table(["method", "Acc%", "Litho#"], rows)
    note = (
        "\nShape target (paper Fig. 4): at matched accuracy 'ours' sits at "
        "the lowest litho overhead,\nQP above it, TS cheapest but unable to "
        "reach the top accuracy."
    )
    return series, text + note


# ----------------------------------------------------------------------
# Fig. 5 — hotspot / sampled-clip layout maps
# ----------------------------------------------------------------------

def fig5_layout(benchmark: str = "iccad16-2", seed: int = 0):
    """ASCII chip maps: where hotspots sit and which clips each method
    sent to lithography (PM-exact, TS, QP, Ours)."""
    dataset = load_dataset(benchmark)
    runs = {
        "PM-exact": run_pattern_matching(dataset, "exact", seed=seed),
    }
    for method in ("ts", "qp", "ours"):
        cfg = make_config(method, base_framework_config(benchmark, seed))
        runs[method.upper() if method != "ours" else "Ours"] = PSHDFramework(
            dataset, cfg
        ).run()

    blocks = []
    for label, result in runs.items():
        sampled = set(
            int(i) for i in (result.labeled if result.labeled is not None else [])
        )
        grid_map = _layout_map(dataset, sampled)
        blocks.append(
            f"{label}  (Acc {100 * result.accuracy:.2f}%, "
            f"Litho# {result.litho})\n{grid_map}"
        )
    legend = (
        "legend: '.' clean unsampled | '#' clean litho-sampled | "
        "'x' hotspot unsampled | 'H' hotspot litho-sampled"
    )
    return runs, legend + "\n\n" + "\n\n".join(blocks)


def _layout_map(dataset, sampled: set) -> str:
    xs = sorted({clip.window.x0 for clip in dataset.clips})
    ys = sorted({clip.window.y0 for clip in dataset.clips})
    col = {x: i for i, x in enumerate(xs)}
    row = {y: i for i, y in enumerate(ys)}
    canvas = [[" "] * len(xs) for _ in range(len(ys))]
    for i, clip in enumerate(dataset.clips):
        r = row[clip.window.y0]
        c = col[clip.window.x0]
        hot = dataset.labels[i] == 1
        in_sample = i in sampled
        if hot and in_sample:
            mark = "H"
        elif hot:
            mark = "x"
        elif in_sample:
            mark = "#"
        else:
            mark = "."
        canvas[len(ys) - 1 - r][c] = mark
    return "\n".join("".join(line) for line in canvas)


# ----------------------------------------------------------------------
# Fig. 6 — weight comparison and runtime model
# ----------------------------------------------------------------------

def fig6a_weights(benchmark: str = "iccad16-3", seeds: int = 2):
    """Fixed diversity weights w2 in {0.2, 0.4, 0.6} vs dynamic."""
    dataset = load_dataset(benchmark)
    variants: dict[str, SamplingConfig] = {
        "w2=0.2": SamplingConfig(fixed_diversity_weight=0.2),
        "w2=0.4": SamplingConfig(fixed_diversity_weight=0.4),
        "w2=0.6": SamplingConfig(fixed_diversity_weight=0.6),
        "dynamic": SamplingConfig(),
        # extension beyond the paper: CRITIC dynamic weighting
        "critic": SamplingConfig(weighting_method="critic"),
    }
    rows = []
    data = {}
    for label, sampling in variants.items():
        accs, lithos = [], []
        for seed in range(seeds):
            cfg = replace(
                base_framework_config(benchmark, seed),
                sampling=sampling,
                method_name=label,
            )
            result = PSHDFramework(dataset, cfg).run()
            accs.append(result.accuracy)
            lithos.append(float(result.litho))
        data[label] = (float(np.mean(accs)), float(np.mean(lithos)))
        rows.append([label, 100.0 * np.mean(accs), int(np.mean(lithos))])
    text = format_table(["weights", "Acc%", "Litho#"], rows)
    return data, text


def fig6b_runtime(benchmarks=("iccad16-2", "iccad16-4"), seed: int = 0):
    """Overall runtime model (10 s per litho-clip + PSHD overhead)."""
    rows = []
    data = {}
    for name in benchmarks:
        dataset = load_dataset(name)
        for method in ("pm-exact", "ts", "qp", "ours"):
            if method == "pm-exact":
                result = run_pattern_matching(dataset, "exact", seed=seed)
            else:
                cfg = make_config(method, base_framework_config(name, seed))
                result = PSHDFramework(dataset, cfg).run()
            runtime = overall_runtime(result.litho, result.pshd_seconds)
            data[(name, method)] = runtime
            rows.append([name, method, result.litho,
                         round(result.pshd_seconds, 1), round(runtime, 1)])
    text = format_table(
        ["benchmark", "method", "Litho#", "PSHD s", "total s (10s/clip model)"],
        rows,
    )
    return data, text
