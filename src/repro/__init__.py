"""repro — reproduction of "Low-Cost Lithography Hotspot Detection with
Active Entropy Sampling and Model Calibration" (Xiao et al., DAC 2021).

Subpackages
-----------
``repro.core``
    The paper's contribution: calibrated hotspot-aware uncertainty,
    min-distance diversity, entropy weighting, the EntropySampling batch
    selector (Alg. 1) and the overall PSHD framework (Alg. 2).
``repro.nn``
    Pure-numpy deep-learning engine (conv/dense layers, losses, optimizers).
``repro.layout`` / ``repro.litho``
    Layout geometry and the lithography simulator that acts as the
    expensive labeling oracle.
``repro.data`` / ``repro.features``
    Synthetic ICCAD'12/'16-style benchmark builders and DCT feature
    extraction.
``repro.model`` / ``repro.calibration``
    The hotspot CNN and temperature-scaling calibration.
``repro.stats``
    GMM / PCA / k-means used for query-set formation and baselines.
``repro.baselines``
    Pattern matching (exact and fuzzy), TS, and QP comparison methods.
``repro.engine``
    Inference engine: cached-scaling inference sessions, the run event
    bus, and the name-keyed method registry.
``repro.bench``
    Experiment harness reproducing every table and figure of the paper.
"""

__version__ = "1.0.0"
