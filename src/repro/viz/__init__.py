"""Dependency-free visualization: SVG layout/clip/detection rendering
and Netpbm raster export for aerial images."""

from .images import save_intensity_ppm, save_pgm
from .svg import render_clip_svg, render_detection_svg, render_layout_svg

__all__ = [
    "render_layout_svg",
    "render_clip_svg",
    "render_detection_svg",
    "save_pgm",
    "save_intensity_ppm",
]
