"""Raster image export (PGM/PPM) for aerial images and masks.

Netpbm formats need no libraries and open everywhere; aerial-image
heatmaps use a blue-white-red colormap over the resist threshold so a
reader sees at a glance which regions print.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_pgm", "save_intensity_ppm"]


def save_pgm(image: np.ndarray, path, lo: float | None = None,
             hi: float | None = None) -> None:
    """Save a 2-D array as an 8-bit binary PGM, scaled from [lo, hi]."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected 2-D image, got {image.shape}")
    lo = float(image.min()) if lo is None else lo
    hi = float(image.max()) if hi is None else hi
    span = hi - lo if hi > lo else 1.0
    scaled = np.clip((image - lo) / span * 255.0, 0, 255).astype(np.uint8)
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode()
    Path(path).write_bytes(header + scaled.tobytes())


def save_intensity_ppm(
    intensity: np.ndarray, path, threshold: float = 0.35
) -> None:
    """Save an aerial image as a PPM heatmap centred on ``threshold``.

    Below-threshold intensity shades blue (does not print), above
    shades red (prints); exactly at threshold is white — the printed
    contour is the blue/red boundary.
    """
    intensity = np.asarray(intensity, dtype=np.float64)
    if intensity.ndim != 2:
        raise ValueError(f"expected 2-D image, got {intensity.shape}")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")

    # signed distance from threshold, normalized to [-1, 1]
    above = intensity.max() - threshold
    below = threshold - intensity.min()
    signed = np.where(
        intensity >= threshold,
        (intensity - threshold) / (above if above > 0 else 1.0),
        -(threshold - intensity) / (below if below > 0 else 1.0),
    )
    signed = np.clip(signed, -1.0, 1.0)

    rgb = np.empty(intensity.shape + (3,), dtype=np.uint8)
    hot = signed >= 0
    # white -> red as signed goes 0 -> 1
    rgb[..., 0] = 255
    rgb[..., 1] = np.where(hot, (1 - signed) * 255, 255).astype(np.uint8)
    rgb[..., 2] = np.where(hot, (1 - signed) * 255, 255).astype(np.uint8)
    # white -> blue as signed goes 0 -> -1
    cold = ~hot
    rgb[..., 0][cold] = ((1 + signed[cold]) * 255).astype(np.uint8)
    rgb[..., 1][cold] = ((1 + signed[cold]) * 255).astype(np.uint8)
    rgb[..., 2][cold] = 255

    header = f"P6\n{intensity.shape[1]} {intensity.shape[0]}\n255\n".encode()
    Path(path).write_bytes(header + rgb.tobytes())
