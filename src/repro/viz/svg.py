"""SVG rendering of layouts, clips and detection results.

Dependency-free visualization: hand-written SVG markup for geometry and
overlays (hotspot marks, sampled-clip shading) mirroring the paper's
Fig. 5.  Output opens in any browser.
"""

from __future__ import annotations

from pathlib import Path

from ..layout.clip import Clip
from ..layout.geometry import Rect
from ..layout.layout import Layout

__all__ = ["render_layout_svg", "render_clip_svg", "render_detection_svg"]

_STYLE = {
    "metal": "fill:#4a78b8;stroke:#1d3c63;stroke-width:1",
    "core": "fill:none;stroke:#c0392b;stroke-width:2;stroke-dasharray:8,4",
    "hotspot": "fill:none;stroke:#c0392b;stroke-width:3",
    "sampled": "fill:#f3d27a;fill-opacity:0.45;stroke:none",
    "window": "fill:none;stroke:#888;stroke-width:0.5",
}


def _svg_header(view: Rect, width_px: int) -> str:
    aspect = view.height / view.width
    height_px = max(int(width_px * aspect), 1)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width_px}" height="{height_px}" '
        f'viewBox="{view.x0} {view.y0} {view.width} {view.height}" '
        # flip y so layout coordinates read bottom-up as in EDA tools
        f'transform="scale(1,-1)">'
    )


def _rect_tag(rect: Rect, style: str) -> str:
    return (
        f'<rect x="{rect.x0}" y="{rect.y0}" width="{rect.width}" '
        f'height="{rect.height}" style="{style}"/>'
    )


def render_layout_svg(
    layout: Layout, path, width_px: int = 800, view: Rect | None = None
) -> str:
    """Render a layout's geometry; returns (and writes) the SVG text."""
    view = view if view is not None else layout.die
    parts = [_svg_header(view, width_px)]
    parts.extend(
        _rect_tag(rect, _STYLE["metal"])
        for rect in layout.query(view)
    )
    parts.append("</svg>")
    text = "\n".join(parts)
    Path(path).write_text(text)
    return text


def render_clip_svg(clip: Clip, path, width_px: int = 400) -> str:
    """Render one clip with its core-region outline."""
    width, height = clip.size
    view = Rect(0, 0, width, height)
    parts = [_svg_header(view, width_px)]
    parts.extend(_rect_tag(rect, _STYLE["metal"]) for rect in clip.rects)
    parts.append(_rect_tag(clip.core_local(), _STYLE["core"]))
    parts.append("</svg>")
    text = "\n".join(parts)
    Path(path).write_text(text)
    return text


def render_detection_svg(
    dataset,
    sampled_indices,
    path,
    width_px: int = 800,
) -> str:
    """Fig. 5-style overview: clip windows, sampled shading, hotspots.

    ``dataset`` is a :class:`~repro.data.dataset.ClipDataset`;
    ``sampled_indices`` the litho-labeled clip indices of one method.
    """
    if len(dataset) == 0:
        raise ValueError("empty dataset")
    sampled = set(int(i) for i in sampled_indices)
    windows = [clip.window for clip in dataset.clips]
    view = Rect(
        min(w.x0 for w in windows),
        min(w.y0 for w in windows),
        max(w.x1 for w in windows),
        max(w.y1 for w in windows),
    )
    parts = [_svg_header(view, width_px)]
    for i, clip in enumerate(dataset.clips):
        window = clip.window
        if i in sampled:
            parts.append(_rect_tag(window, _STYLE["sampled"]))
        parts.append(_rect_tag(window, _STYLE["window"]))
        if dataset.labels[i] == 1:
            cx, cy = window.center
            r = window.width // 6
            parts.append(
                f'<line x1="{cx - r}" y1="{cy - r}" x2="{cx + r}" '
                f'y2="{cy + r}" style="{_STYLE["hotspot"]}"/>'
                f'<line x1="{cx - r}" y1="{cy + r}" x2="{cx + r}" '
                f'y2="{cy - r}" style="{_STYLE["hotspot"]}"/>'
            )
    parts.append("</svg>")
    text = "\n".join(parts)
    Path(path).write_text(text)
    return text
