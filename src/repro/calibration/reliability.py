"""Reliability diagrams and calibration-error metrics (Fig. 2).

The paper visualizes calibration by binning predictions into 10
equally-spaced confidence bins and comparing each bin's average
confidence with its empirical accuracy; the blue "gap" bars of Fig. 2
are exactly ``|confidence - accuracy|`` per bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ReliabilityDiagram",
    "reliability_diagram",
    "expected_calibration_error",
    "max_calibration_error",
]


@dataclass
class ReliabilityDiagram:
    """Binned calibration data.

    All arrays have ``n_bins`` entries; empty bins hold NaN accuracy /
    confidence and zero count.
    """

    bin_edges: np.ndarray      # (n_bins + 1,)
    confidence: np.ndarray     # mean max-probability per bin
    accuracy: np.ndarray       # empirical accuracy per bin
    count: np.ndarray          # samples per bin
    ece: float                 # expected calibration error
    mce: float                 # maximum calibration error

    @property
    def gap(self) -> np.ndarray:
        """Per-bin |confidence - accuracy| (the blue bars of Fig. 2)."""
        return np.abs(self.confidence - self.accuracy)

    def to_rows(self) -> list[tuple[float, float, float, int]]:
        """(bin_center, confidence, accuracy, count) rows for reports."""
        centers = (self.bin_edges[:-1] + self.bin_edges[1:]) / 2
        return [
            (float(c), float(conf), float(acc), int(n))
            for c, conf, acc, n in zip(
                centers, self.confidence, self.accuracy, self.count
            )
        ]


def _validate(probs: np.ndarray, labels: np.ndarray, n_bins: int) -> None:
    if probs.ndim != 2:
        raise ValueError(f"expected (N, C) probabilities, got {probs.shape}")
    if len(probs) != len(labels):
        raise ValueError("probs and labels lengths differ")
    if len(probs) == 0:
        raise ValueError("empty inputs")
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")


def reliability_diagram(
    probs: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> ReliabilityDiagram:
    """Bin predictions by confidence and measure per-bin accuracy."""
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    _validate(probs, labels, n_bins)

    confidence = probs.max(axis=1)
    correct = (probs.argmax(axis=1) == labels).astype(np.float64)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    # np.digitize puts conf==1.0 into the last bin via right-open clamp
    bins = np.clip(np.digitize(confidence, edges[1:-1]), 0, n_bins - 1)

    bin_conf = np.full(n_bins, np.nan)
    bin_acc = np.full(n_bins, np.nan)
    bin_count = np.zeros(n_bins, dtype=np.int64)
    for b in range(n_bins):
        members = bins == b
        bin_count[b] = members.sum()
        if bin_count[b]:
            bin_conf[b] = confidence[members].mean()
            bin_acc[b] = correct[members].mean()

    weights = bin_count / bin_count.sum()
    gaps = np.abs(np.nan_to_num(bin_conf) - np.nan_to_num(bin_acc))
    ece = float((weights * gaps).sum())
    occupied = bin_count > 0
    mce = float(gaps[occupied].max()) if occupied.any() else 0.0

    return ReliabilityDiagram(
        bin_edges=edges,
        confidence=bin_conf,
        accuracy=bin_acc,
        count=bin_count,
        ece=ece,
        mce=mce,
    )


def expected_calibration_error(
    probs: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: count-weighted mean |confidence - accuracy| over bins."""
    return reliability_diagram(probs, labels, n_bins).ece


def max_calibration_error(
    probs: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """MCE: worst-bin |confidence - accuracy|."""
    return reliability_diagram(probs, labels, n_bins).mce
