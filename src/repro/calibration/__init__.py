"""Calibration substrate (S7): temperature scaling (Eq. (5)) and
reliability diagnostics (Fig. 2)."""

from .reliability import (
    ReliabilityDiagram,
    expected_calibration_error,
    max_calibration_error,
    reliability_diagram,
)
from .temperature import (
    TemperatureFitResult,
    TemperatureScaler,
    fit_temperature,
    nll,
    scaled_softmax,
)

__all__ = [
    "scaled_softmax",
    "nll",
    "fit_temperature",
    "TemperatureFitResult",
    "TemperatureScaler",
    "ReliabilityDiagram",
    "reliability_diagram",
    "expected_calibration_error",
    "max_calibration_error",
]
