"""Temperature scaling (Guo et al., ICML 2017) — Eq. (5) of the paper.

A single scalar ``T > 0`` divides the logits before the softmax.  ``T`` is
chosen to minimize the negative log likelihood (cross-entropy) on a
held-out validation set (Algorithm 2, line 8).  Scaling never changes the
argmax, so predictions are untouched — only the confidence estimates move
toward the true correctness likelihood.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np
from scipy.optimize import minimize_scalar

from ..analysis.contracts import contract
from ..nn.losses import log_softmax, softmax

__all__ = [
    "scaled_softmax",
    "nll",
    "fit_temperature",
    "TemperatureFitResult",
    "TemperatureScaler",
]


class TemperatureFitResult(NamedTuple):
    """Outcome of one temperature fit (``full_output=True``)."""

    #: the fitted temperature, clamped into the requested bounds
    temperature: float
    #: whether the bounded optimizer reported convergence and the
    #: result is finite — the run supervisor consults this flag
    converged: bool


@contract(logits="f[N,K]", returns="f8[N,K]")
def scaled_softmax(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Temperature-scaled softmax ``sigma(z / T)`` (Eq. (5))."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return softmax(np.asarray(logits, dtype=np.float64) / temperature)


@contract(logits="f[N,K]", labels="i[N]|b[N]")
def nll(logits: np.ndarray, labels: np.ndarray, temperature: float) -> float:
    """Mean negative log likelihood at the given temperature."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    labels = np.asarray(labels, dtype=np.int64)
    log_p = log_softmax(np.asarray(logits, dtype=np.float64) / temperature)
    return float(-log_p[np.arange(len(labels)), labels].mean())


@contract(logits="f[N,K]", labels="i[N]|b[N]")
def fit_temperature(
    logits: np.ndarray,
    labels: np.ndarray,
    bounds: tuple[float, float] = (0.05, 20.0),
    full_output: bool = False,
) -> float | TemperatureFitResult:
    """Optimal temperature by NLL minimization on validation data.

    Uses bounded scalar minimization in log-space (the NLL is smooth and
    unimodal in ``log T`` for fixed logits).  Non-finite logits are
    rejected up front, and the fitted ``T`` is clamped into ``bounds``
    — the documented ``[t_min, t_max]`` range downstream consumers may
    rely on.  With ``full_output=True`` a
    :class:`TemperatureFitResult` carrying a ``converged`` flag is
    returned instead of the bare float.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got {logits.shape}")
    if len(logits) != len(labels):
        raise ValueError("logits and labels lengths differ")
    if len(logits) == 0:
        raise ValueError("cannot fit temperature on empty validation set")
    if not np.isfinite(logits).all():
        raise ValueError(
            "logits contain non-finite values; temperature scaling "
            "needs finite validation logits"
        )
    t_min, t_max = float(bounds[0]), float(bounds[1])
    if not 0 < t_min < t_max:
        raise ValueError(f"need 0 < t_min < t_max, got ({t_min}, {t_max})")

    result = minimize_scalar(
        lambda log_t: nll(logits, labels, float(np.exp(log_t))),
        bounds=(np.log(t_min), np.log(t_max)),
        method="bounded",
    )
    temperature = float(np.exp(result.x))
    converged = bool(result.success and np.isfinite(temperature))
    temperature = float(min(max(temperature, t_min), t_max))
    if full_output:
        return TemperatureFitResult(temperature, converged)
    return temperature


class TemperatureScaler:
    """Stateful wrapper: fit on validation logits, transform any logits.

    ``converged_`` records the optimizer's convergence flag of the last
    :meth:`fit` (``None`` until fitted, or when ``temperature_`` was
    set directly — e.g. the identity fallback of the run supervisor).
    """

    def __init__(self) -> None:
        self.temperature_: float | None = None
        self.converged_: bool | None = None

    def fit(
        self,
        logits: np.ndarray,
        labels: np.ndarray,
        bounds: tuple[float, float] = (0.05, 20.0),
    ) -> "TemperatureScaler":
        outcome = fit_temperature(logits, labels, bounds, full_output=True)
        self.temperature_ = outcome.temperature
        self.converged_ = outcome.converged
        return self

    @contract(logits="f[N,K]", returns="f8[N,K]")
    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated probabilities for ``logits``."""
        if self.temperature_ is None:
            raise RuntimeError("TemperatureScaler is not fitted")
        return scaled_softmax(logits, self.temperature_)

    def fit_transform(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.fit(logits, labels).transform(logits)
