"""Temperature scaling (Guo et al., ICML 2017) — Eq. (5) of the paper.

A single scalar ``T > 0`` divides the logits before the softmax.  ``T`` is
chosen to minimize the negative log likelihood (cross-entropy) on a
held-out validation set (Algorithm 2, line 8).  Scaling never changes the
argmax, so predictions are untouched — only the confidence estimates move
toward the true correctness likelihood.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize_scalar

from ..analysis.contracts import contract
from ..nn.losses import log_softmax, softmax

__all__ = ["scaled_softmax", "nll", "fit_temperature", "TemperatureScaler"]


@contract(logits="f[N,K]", returns="f8[N,K]")
def scaled_softmax(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Temperature-scaled softmax ``sigma(z / T)`` (Eq. (5))."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return softmax(np.asarray(logits, dtype=np.float64) / temperature)


@contract(logits="f[N,K]", labels="i[N]|b[N]")
def nll(logits: np.ndarray, labels: np.ndarray, temperature: float) -> float:
    """Mean negative log likelihood at the given temperature."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    labels = np.asarray(labels, dtype=np.int64)
    log_p = log_softmax(np.asarray(logits, dtype=np.float64) / temperature)
    return float(-log_p[np.arange(len(labels)), labels].mean())


@contract(logits="f[N,K]", labels="i[N]|b[N]")
def fit_temperature(
    logits: np.ndarray,
    labels: np.ndarray,
    bounds: tuple[float, float] = (0.05, 20.0),
) -> float:
    """Optimal temperature by NLL minimization on validation data.

    Uses bounded scalar minimization in log-space (the NLL is smooth and
    unimodal in ``log T`` for fixed logits).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got {logits.shape}")
    if len(logits) != len(labels):
        raise ValueError("logits and labels lengths differ")
    if len(logits) == 0:
        raise ValueError("cannot fit temperature on empty validation set")

    result = minimize_scalar(
        lambda log_t: nll(logits, labels, float(np.exp(log_t))),
        bounds=(np.log(bounds[0]), np.log(bounds[1])),
        method="bounded",
    )
    return float(np.exp(result.x))


class TemperatureScaler:
    """Stateful wrapper: fit on validation logits, transform any logits."""

    def __init__(self) -> None:
        self.temperature_: float | None = None

    def fit(self, logits: np.ndarray, labels: np.ndarray) -> "TemperatureScaler":
        self.temperature_ = fit_temperature(logits, labels)
        return self

    @contract(logits="f[N,K]", returns="f8[N,K]")
    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated probabilities for ``logits``."""
        if self.temperature_ is None:
            raise RuntimeError("TemperatureScaler is not fitted")
        return scaled_softmax(logits, self.temperature_)

    def fit_transform(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.fit(logits, labels).transform(logits)
