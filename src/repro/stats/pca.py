"""Principal component analysis via thin SVD.

Block-DCT feature vectors are ~4600-dimensional; the GMM that forms the
query set works far better (and faster) on a PCA projection that keeps
most of the variance.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract

__all__ = ["PCA"]


class PCA:
    """Standard PCA: centre, project onto top right-singular vectors."""

    def __init__(self, n_components: int) -> None:
        if n_components <= 0:
            raise ValueError(f"n_components must be positive, got {n_components}")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    @contract(x="*[N,D]")
    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected (N, D) data, got {x.shape}")
        n, d = x.shape
        k = min(self.n_components, min(n, d))
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[:k]
        denom = max(n - 1, 1)
        variances = singular**2 / denom
        self.explained_variance_ = variances[:k]
        total = variances.sum()
        self.explained_variance_ratio_ = (
            variances[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")

    @contract(x="*[N,D]", returns="f8[N,K]")
    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(x, dtype=np.float64) - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    @contract(z="*[N,K]", returns="f8[N,D]")
    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(z, dtype=np.float64) @ self.components_ + self.mean_
