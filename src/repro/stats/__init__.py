"""Statistical tools substrate (S8): GMM (query-set formation), PCA
(feature compression) and k-means (clustering baselines)."""

from .gmm import FitError, GaussianMixture
from .kmeans import KMeans, kmeans_pp_init
from .pca import PCA

__all__ = ["FitError", "GaussianMixture", "PCA", "KMeans", "kmeans_pp_init"]
