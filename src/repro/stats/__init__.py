"""Statistical tools substrate (S8): GMM (query-set formation), PCA
(feature compression) and k-means (clustering baselines)."""

from .gmm import GaussianMixture
from .kmeans import KMeans, kmeans_pp_init
from .pca import PCA

__all__ = ["GaussianMixture", "PCA", "KMeans", "kmeans_pp_init"]
