"""k-means clustering with k-means++ seeding.

Used by the clustering-based diversity baseline (Zhang & Rudnicky style)
and available as a building block for BADGE-like samplers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans_pp_init", "KMeans"]


def kmeans_pp_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centres by D^2 sampling."""
    n = x.shape[0]
    if k > n:
        raise ValueError(f"k={k} exceeds sample count {n}")
    centres = [x[rng.integers(n)]]
    for _ in range(1, k):
        d2 = np.min(
            ((x[:, None, :] - np.array(centres)[None]) ** 2).sum(-1), axis=1
        )
        total = d2.sum()
        if total <= 0:
            centres.append(x[rng.integers(n)])
        else:
            centres.append(x[rng.choice(n, p=d2 / total)])
    return np.array(centres)


class KMeans:
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(self, k: int, max_iter: int = 100, tol: float = 1e-6,
                 seed: int = 0) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centres_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected (N, D) data, got {x.shape}")
        rng = np.random.default_rng(self.seed)
        centres = kmeans_pp_init(x, self.k, rng)

        for _ in range(self.max_iter):
            d2 = ((x[:, None, :] - centres[None]) ** 2).sum(-1)
            labels = d2.argmin(axis=1)
            new_centres = centres.copy()
            for j in range(self.k):
                members = x[labels == j]
                if len(members):
                    new_centres[j] = members.mean(axis=0)
            shift = float(np.abs(new_centres - centres).max())
            centres = new_centres
            if shift < self.tol:
                break

        d2 = ((x[:, None, :] - centres[None]) ** 2).sum(-1)
        self.labels_ = d2.argmin(axis=1)
        self.inertia_ = float(d2[np.arange(len(x)), self.labels_].sum())
        self.centres_ = centres
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centres_ is None:
            raise RuntimeError("KMeans is not fitted")
        x = np.asarray(x, dtype=np.float64)
        d2 = ((x[:, None, :] - self.centres_[None]) ** 2).sum(-1)
        return d2.argmin(axis=1)
