"""Diagonal-covariance Gaussian Mixture Model fitted with EM.

Algorithm 2 of the paper seeds and drives query-set formation from "the
posterior probabilities of the unlabeled dataset" under a GMM: patterns
with the *lowest* probability under the fitted mixture are the rare,
hotspot-like ones that get queried first.  scikit-learn is not available
offline, so this is a from-scratch EM implementation.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract

__all__ = ["FitError", "GaussianMixture"]


class FitError(ValueError):
    """EM fitting failed on degenerate input or diverged numerically.

    Raised instead of letting ``LinAlgError``-style breakage or NaN
    posteriors leak out of :meth:`GaussianMixture.fit`; the run
    supervisor (:mod:`repro.engine.guard`) catches it to re-seed or
    fall back to random seeding.  Subclasses ``ValueError`` so callers
    that treated degenerate input as a value error keep working.
    """


class GaussianMixture:
    """GMM with diagonal covariances.

    Parameters
    ----------
    n_components:
        Mixture size.
    max_iter / tol:
        EM stopping criteria (iterations / log-likelihood improvement).
    reg_covar:
        Variance floor added to every dimension for numerical stability.
    seed:
        Seed for the k-means++-style mean initialization.
    """

    def __init__(
        self,
        n_components: int = 4,
        max_iter: int = 100,
        tol: float = 1e-4,
        reg_covar: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_components <= 0:
            raise ValueError(f"n_components must be positive, got {n_components}")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.converged_ = False
        self.n_iter_ = 0
        self._log_density_ref_: float | None = None

    # ------------------------------------------------------------------
    def _init_means(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding of component means."""
        n = x.shape[0]
        means = [x[rng.integers(n)]]
        for _ in range(1, self.n_components):
            d2 = np.min(
                ((x[:, None, :] - np.array(means)[None]) ** 2).sum(-1), axis=1
            )
            total = d2.sum()
            if total <= 0:
                means.append(x[rng.integers(n)])
                continue
            means.append(x[rng.choice(n, p=d2 / total)])
        return np.array(means)

    @contract(x="*[N,D]")
    def fit(self, x: np.ndarray) -> "GaussianMixture":
        """Run EM on data ``x`` of shape (N, D)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected (N, D) data, got shape {x.shape}")
        n, d = x.shape
        if n < self.n_components:
            raise FitError(
                f"need at least {self.n_components} samples, got {n}"
            )
        if not np.isfinite(x).all():
            raise FitError(
                "input contains non-finite values; clean or impute the "
                "features before fitting"
            )
        rng = np.random.default_rng(self.seed)

        self.means_ = self._init_means(x, rng)
        global_var = x.var(axis=0) + self.reg_covar
        self.variances_ = np.tile(global_var, (self.n_components, 1))
        self.weights_ = np.full(self.n_components, 1.0 / self.n_components)

        prev_ll = -np.inf
        for iteration in range(1, self.max_iter + 1):
            log_resp, ll = self._e_step(x)
            if not np.isfinite(ll):
                raise FitError(
                    f"log-likelihood became non-finite at EM iteration "
                    f"{iteration} (degenerate input?)"
                )
            self._m_step(x, log_resp)
            self.n_iter_ = iteration
            if abs(ll - prev_ll) < self.tol * max(1.0, abs(prev_ll)):
                self.converged_ = True
                break
            prev_ll = ll
        for name, param in (("weights", self.weights_),
                            ("means", self.means_),
                            ("variances", self.variances_)):
            if not np.isfinite(param).all():
                raise FitError(
                    f"fitted {name} contain non-finite values "
                    "(degenerate input?)"
                )
        self._log_density_ref_ = float(self.score_samples(x).max())
        if not np.isfinite(self._log_density_ref_):
            raise FitError(
                "training-data log-density reference is non-finite "
                "(degenerate input?)"
            )
        return self

    # ------------------------------------------------------------------
    def _log_prob_components(self, x: np.ndarray) -> np.ndarray:
        """Per-component log densities, shape (N, K)."""
        diff = x[:, None, :] - self.means_[None]  # (N, K, D)
        inv_var = 1.0 / self.variances_  # (K, D)
        mahal = (diff**2 * inv_var[None]).sum(-1)  # (N, K)
        log_det = np.log(self.variances_).sum(-1)  # (K,)
        d = x.shape[1]
        return -0.5 * (mahal + log_det + d * np.log(2 * np.pi))

    def _e_step(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        weighted = self._log_prob_components(x) + np.log(self.weights_)[None]
        norm = _logsumexp(weighted, axis=1)
        return weighted - norm[:, None], float(norm.sum())

    def _m_step(self, x: np.ndarray, log_resp: np.ndarray) -> None:
        resp = np.exp(log_resp)  # (N, K)
        nk = resp.sum(axis=0) + 1e-12
        self.weights_ = nk / nk.sum()
        self.means_ = (resp.T @ x) / nk[:, None]
        diff2 = (x[:, None, :] - self.means_[None]) ** 2
        self.variances_ = (
            np.einsum("nk,nkd->kd", resp, diff2) / nk[:, None] + self.reg_covar
        )

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.means_ is None:
            raise RuntimeError("GaussianMixture is not fitted")

    @contract(x="*[N,D]", returns="f8[N]")
    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Log-likelihood of each sample under the mixture."""
        self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        weighted = self._log_prob_components(x) + np.log(self.weights_)[None]
        return _logsumexp(weighted, axis=1)

    @contract(x="*[N,D]", returns="f8[N]")
    def posterior(self, x: np.ndarray) -> np.ndarray:
        """Posterior probability of each sample (normalized density).

        The quantity Algorithm 2 ranks by: low values mark rare,
        hotspot-like patterns.  Computed as the mixture density rescaled
        to [0, 1] by the maximum density observed on the *training* data,
        so values are comparable across queries of any batch size.
        """
        log_density = self.score_samples(x)
        return np.exp(np.minimum(log_density - self._log_density_ref_, 0.0))

    @contract(x="*[N,D]", returns="f8[N,K]")
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Component responsibilities, shape (N, K), rows sum to 1."""
        self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        weighted = self._log_prob_components(x) + np.log(self.weights_)[None]
        return np.exp(weighted - _logsumexp(weighted, axis=1)[:, None])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard component assignment."""
        return self.predict_proba(x).argmax(axis=1)


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    peak = a.max(axis=axis, keepdims=True)
    out = np.log(np.exp(a - peak).sum(axis=axis)) + peak.squeeze(axis)
    return out
