"""Hotspot model substrate (S6): CNN/MLP architectures, input scaling,
and the trainable classifier with embedding access."""

from .classifier import FullPrediction, HotspotClassifier
from .cnn import EMBEDDING_DIM, build_hotspot_cnn, build_hotspot_mlp
from .committee import CommitteeClassifier
from .evaluation import (
    ConfusionMatrix,
    auc,
    classification_report,
    confusion_matrix,
    pr_curve,
    roc_curve,
)
from .scaler import TensorScaler

__all__ = [
    "HotspotClassifier",
    "FullPrediction",
    "CommitteeClassifier",
    "build_hotspot_cnn",
    "build_hotspot_mlp",
    "EMBEDDING_DIM",
    "TensorScaler",
    "ConfusionMatrix",
    "confusion_matrix",
    "roc_curve",
    "pr_curve",
    "auc",
    "classification_report",
]
