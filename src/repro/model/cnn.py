"""Hotspot CNN architectures.

The paper's learning engine follows the Yang et al. hotspot-CNN lineage:
four 3x3 convolution layers in two pooled stages over the DCT tensor,
then a 250-unit fully-connected embedding layer whose activations feed
the diversity metric (Eq. (7)), and a 2-way softmax head.
"""

from __future__ import annotations

import numpy as np

from ..nn import BatchNorm, Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential

__all__ = ["build_hotspot_cnn", "build_hotspot_mlp", "EMBEDDING_DIM"]

#: width of the fully-connected embedding layer (Yang et al. use FC-250)
EMBEDDING_DIM = 250


def build_hotspot_cnn(
    input_shape: tuple[int, int, int] = (32, 12, 12),
    rng: np.random.Generator | None = None,
    embedding_dim: int = EMBEDDING_DIM,
    base_channels: int = 16,
    batch_norm: bool = False,
) -> tuple[Sequential, int]:
    """Build the hotspot CNN.

    Returns ``(network, embedding_layer_index)`` — the index selects the
    post-ReLU output of the FC embedding layer for ``forward_to``.
    With ``batch_norm=True`` each conv block gets a BatchNorm before its
    ReLU (faster convergence on deeper runs, at extra compute).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    channels, height, width = input_shape
    if height % 4 or width % 4:
        raise ValueError(
            f"spatial dims must be divisible by 4 for two pools, got {input_shape}"
        )
    c1, c2 = base_channels, base_channels * 2
    flat = c2 * (height // 4) * (width // 4)

    def block(c_in: int, c_out: int) -> list:
        conv = [Conv2D(c_in, c_out, kernel_size=3, pad=1, rng=rng)]
        if batch_norm:
            conv.append(BatchNorm(c_out))
        conv.append(ReLU())
        return conv

    # without batch_norm every Conv2D/Dense is directly followed by its
    # ReLU, so Sequential fuses each pair into a single kernel; the
    # embedding tap lands on a ReLU output, which fusion serves directly
    layers = (
        block(channels, c1)
        + block(c1, c1)
        + [MaxPool2D(2)]
        + block(c1, c2)
        + block(c2, c2)
        + [MaxPool2D(2), Flatten(),
           Dense(flat, embedding_dim, rng=rng), ReLU(),
           Dense(embedding_dim, 2, rng=rng)]
    )
    network = Sequential(layers)
    embedding_index = len(layers) - 2  # the ReLU after the FC embedding
    assert isinstance(layers[embedding_index], ReLU)
    return network, embedding_index


def build_hotspot_mlp(
    input_shape: tuple[int, int, int] = (32, 12, 12),
    rng: np.random.Generator | None = None,
    hidden: int = 64,
    embedding_dim: int = 32,
) -> tuple[Sequential, int]:
    """A lightweight MLP alternative with the same interface.

    Useful for fast experiments and tests; same (network, embedding
    index) contract as :func:`build_hotspot_cnn`.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    flat = int(np.prod(input_shape))
    layers = [
        Flatten(),
        Dense(flat, hidden, rng=rng),
        ReLU(),
        Dense(hidden, embedding_dim, rng=rng),
        ReLU(),
        Dense(embedding_dim, 2, rng=rng),
    ]
    return Sequential(layers), len(layers) - 2
