"""Committee (ensemble) hotspot classifier.

Query-by-committee is the classic alternative to single-model
uncertainty: train ``size`` differently-seeded networks and measure
their disagreement.  :class:`CommitteeClassifier` exposes the same
interface as :class:`~repro.model.classifier.HotspotClassifier`, so it
drops into the PSHD framework unchanged — mean logits give calibrated
probabilities, and :meth:`vote_entropy` / :meth:`disagreement` provide
committee-specific uncertainty for custom selectors.
"""

from __future__ import annotations

import numpy as np

from .classifier import FullPrediction, HotspotClassifier

__all__ = ["CommitteeClassifier"]


class CommitteeClassifier:
    """An ensemble of :class:`HotspotClassifier` members.

    Members share hyperparameters but differ in weight-init and
    shuffling seeds, the standard recipe for committee diversity.
    """

    def __init__(
        self,
        input_shape: tuple[int, int, int],
        size: int = 3,
        arch: str = "mlp",
        lr: float = 1e-3,
        epochs: int = 12,
        class_weight: str | None = "balanced",
        seed: int = 0,
    ) -> None:
        if size < 2:
            raise ValueError(f"committee size must be >= 2, got {size}")
        self.input_shape = tuple(input_shape)
        self.members = [
            HotspotClassifier(
                input_shape=input_shape,
                arch=arch,
                lr=lr,
                epochs=epochs,
                class_weight=class_weight,
                seed=seed + 1000 * i,
            )
            for i in range(size)
        ]

    # -- HotspotClassifier-compatible surface ---------------------------
    def fit_scaler(self, pool_tensors: np.ndarray) -> None:
        for member in self.members:
            member.fit_scaler(pool_tensors)

    @property
    def scaler(self):
        """Members share scaler statistics (fitted on the same pool);
        the first member's scaler stands in for the committee's."""
        return self.members[0].scaler

    @property
    def scaler_version(self) -> int:
        """Changes whenever any member's scaler is refitted (cache key
        for :class:`~repro.engine.session.InferenceSession`)."""
        return sum(m.scaler_version for m in self.members)

    def fit(self, x, y, epochs: int | None = None) -> list[float]:
        traces = [m.fit(x, y, epochs=epochs) for m in self.members]
        return list(np.mean(traces, axis=0))

    def update(self, x, y, epochs: int | None = None) -> list[float]:
        traces = [m.update(x, y, epochs=epochs) for m in self.members]
        return list(np.mean(traces, axis=0))

    def predict_logits(
        self, x: np.ndarray, prescaled: bool = False
    ) -> np.ndarray:
        """Mean member logits (the committee's consensus score)."""
        return np.mean(
            [m.predict_logits(x, prescaled=prescaled) for m in self.members],
            axis=0,
        )

    def predict_full(
        self,
        x: np.ndarray,
        normalize: bool = True,
        prescaled: bool = False,
    ) -> FullPrediction:
        """Consensus logits + first-member embeddings in one sweep of
        the first member plus one logits pass per remaining member."""
        first = self.members[0].predict_full(
            x, normalize=normalize, prescaled=prescaled
        )
        logits = np.mean(
            [first.logits]
            + [m.predict_logits(x, prescaled=prescaled)
               for m in self.members[1:]],
            axis=0,
        )
        return FullPrediction(logits=logits, embeddings=first.embeddings)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Mean member probabilities (soft vote)."""
        return np.mean([m.predict_proba(x) for m in self.members], axis=0)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority hard vote."""
        votes = np.stack([m.predict(x) for m in self.members])
        return (votes.mean(axis=0) > 0.5).astype(np.int64)

    def embeddings(
        self,
        x: np.ndarray,
        normalize: bool = True,
        prescaled: bool = False,
    ) -> np.ndarray:
        """Embeddings of the first member (diversity metric input)."""
        return self.members[0].embeddings(
            x, normalize=normalize, prescaled=prescaled
        )

    def clone_untrained(self) -> "CommitteeClassifier":
        first = self.members[0]
        return CommitteeClassifier(
            input_shape=self.input_shape,
            size=len(self.members),
            arch=first.arch,
            lr=first.lr,
            epochs=first.epochs,
            class_weight=first.class_weight,
            seed=first.seed,
        )

    # -- committee-specific uncertainty ---------------------------------
    def vote_entropy(self, x: np.ndarray) -> np.ndarray:
        """Hard-vote entropy in nats: 0 = unanimous, ln 2 = even split."""
        votes = np.stack([m.predict(x) for m in self.members])  # (E, N)
        p_hot = votes.mean(axis=0)
        p = np.clip(np.column_stack([1 - p_hot, p_hot]), 1e-12, 1.0)
        return -(p * np.log(p)).sum(axis=1)

    def disagreement(self, x: np.ndarray) -> np.ndarray:
        """Std-dev of member hotspot probabilities (soft disagreement)."""
        probs = np.stack([m.predict_proba(x)[:, 1] for m in self.members])
        return probs.std(axis=0)
