"""The hotspot classifier: CNN + training loop + embedding access.

:class:`HotspotClassifier` is the single object the active-learning
framework interacts with.  It owns the network, the input scaler and the
optimizer state, provides softmax probabilities (Eq. (4)), and exposes
the L2-normalized FC-embedding features consumed by the diversity metric
(Eqs. (7)–(8)).
"""

from __future__ import annotations

import json
from typing import NamedTuple

import numpy as np

from ..analysis.contracts import contract
from ..nn import Adam, SoftmaxCrossEntropy, softmax
from ..nn.optim import flatten_state, unflatten_state
from ..nn.runtime import ComputeRuntime, PrecisionPolicy
from .cnn import build_hotspot_cnn, build_hotspot_mlp
from .scaler import TensorScaler

__all__ = ["FullPrediction", "HotspotClassifier"]

#: bump on incompatible changes to the save/load archive layout
SAVE_FORMAT_VERSION = 2


class FullPrediction(NamedTuple):
    """Logits and embedding features from one tapped forward pass."""

    logits: np.ndarray
    embeddings: np.ndarray


class HotspotClassifier:
    """Binary hotspot/non-hotspot CNN classifier.

    Parameters
    ----------
    input_shape:
        Feature tensor shape ``(C, H, W)``.
    arch:
        ``"cnn"`` (paper architecture) or ``"mlp"`` (fast variant).
    lr / batch_size / epochs:
        Optimization settings; ``epochs`` is the default for both initial
        ``fit`` and incremental ``update`` calls.
    class_weight:
        ``"balanced"`` reweights classes inversely to their frequency in
        each training call (essential on Table-I-style imbalance), or
        ``None`` for plain cross-entropy.
    seed:
        Controls weight init and shuffling; Algorithm 2 line 3 initializes
        ``w ~ N(0, sigma)``, realized here through the initializer rng.
    augment:
        When true, every training call expands its data with D4
        orientation augmentation performed directly in the DCT domain
        (see :mod:`repro.features.augment`); ``augment_block_size`` is
        the DCT block size of the input tensors.
    precision:
        ``"exact"`` (default) runs inference bit-identically to the seed
        float64 kernels; ``"fast"`` computes the network forward in
        float32 and casts logits/embeddings back to float64 at this
        boundary.  Training, weights, the scaler statistics and
        checkpoints stay float64 in both modes.
    """

    def __init__(
        self,
        input_shape: tuple[int, int, int] = (32, 12, 12),
        arch: str = "cnn",
        lr: float = 1e-3,
        batch_size: int = 32,
        epochs: int = 12,
        class_weight: str | None = "balanced",
        seed: int = 0,
        augment: bool = False,
        augment_block_size: int = 8,
        precision: str = "exact",
    ) -> None:
        if arch not in ("cnn", "mlp"):
            raise ValueError(f"arch must be 'cnn' or 'mlp', got {arch!r}")
        self.input_shape = tuple(input_shape)
        self.arch = arch
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self.class_weight = class_weight
        self.seed = seed
        self.augment = augment
        self.augment_block_size = augment_block_size
        self.precision = precision
        self.policy = PrecisionPolicy(precision)
        #: private compute runtime: workspace buffers and compute dtype
        #: for this model's forward passes (never shared across models)
        self.runtime = ComputeRuntime(policy=self.policy)

        rng = np.random.default_rng(seed)
        builder = build_hotspot_cnn if arch == "cnn" else build_hotspot_mlp
        self.network, self._embedding_index = builder(self.input_shape, rng=rng)
        self.network.runtime = self.runtime
        self.scaler = TensorScaler()
        #: bumped on every scaler (re)fit so downstream caches of scaled
        #: tensors (see repro.engine.session.InferenceSession) can
        #: invalidate themselves
        self.scaler_version = 0
        self._optimizer = Adam(lr=lr)
        self._shuffle_rng = np.random.default_rng(seed + 1)
        self._fitted = False

    @property
    def learning_rate(self) -> float:
        """The optimizer's live learning rate (the run supervisor backs
        this off when rolling back a diverged training stage)."""
        return self._optimizer.lr

    @learning_rate.setter
    def learning_rate(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"learning rate must be positive, got {value}")
        self._optimizer.lr = value

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit_scaler(self, pool_tensors: np.ndarray) -> None:
        """Fit the input scaler on the (unlabeled) pool."""
        self.scaler.fit(pool_tensors)
        self.scaler_version += 1

    def _loss_for(self, y: np.ndarray) -> SoftmaxCrossEntropy:
        if self.class_weight == "balanced":
            counts = np.bincount(y, minlength=2).astype(np.float64)
            counts[counts == 0] = 1.0
            weights = counts.sum() / (2.0 * counts)
            return SoftmaxCrossEntropy(class_weights=weights)
        return SoftmaxCrossEntropy()

    @contract(x="*[N,C,H,W]", y="i[N]|b[N]")
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int | None = None,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        patience: int | None = None,
        min_delta: float = 0.0,
    ) -> list[float]:
        """Train on labeled tensors ``x`` (N, C, H, W) and labels ``y``.

        Returns the per-epoch mean loss trace.  Requires ``fit_scaler``
        to have been called (or fits it on ``x`` as a fallback).

        With ``validation=(xv, yv)`` and ``patience``, training stops
        early when validation loss fails to improve by more than
        ``min_delta`` for ``patience`` consecutive epochs, and the
        best-validation weights are restored.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 4 or x.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected (N, {self.input_shape}), got {x.shape}"
            )
        if len(x) != len(y):
            raise ValueError("x and y lengths differ")
        if len(x) == 0:
            raise ValueError("cannot train on empty data")
        if patience is not None and validation is None:
            raise ValueError("patience requires a validation set")
        if self.scaler.mean_ is None:
            self.fit_scaler(x)

        if self.augment:
            from ..features.augment import augmentation_batch

            x, y = augmentation_batch(
                x, y, block_size=self.augment_block_size
            )

        x = self.scaler.transform(x)
        loss_fn = self._loss_for(y)
        epochs = epochs if epochs is not None else self.epochs
        trace: list[float] = []
        n = len(x)

        best_val = np.inf
        best_weights = None
        stale = 0
        for _ in range(epochs):
            order = self._shuffle_rng.permutation(n)
            losses = []
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                logits = self.network.forward(x[batch], train=True)
                losses.append(loss_fn(logits, y[batch]))
                self.network.backward(loss_fn.backward())
                self._optimizer.step(self.network.param_groups())
            trace.append(float(np.mean(losses)))
            self._fitted = True

            if validation is not None:
                val_loss = self.evaluate_loss(*validation)
                if val_loss < best_val - min_delta:
                    best_val = val_loss
                    best_weights = self.network.get_weights()
                    stale = 0
                else:
                    stale += 1
                    if patience is not None and stale >= patience:
                        break
        if best_weights is not None:
            self.network.set_weights(best_weights)
        self._fitted = True
        return trace

    def evaluate_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean (weighted) cross-entropy on held-out data."""
        y = np.asarray(y, dtype=np.int64)
        logits = self.predict_logits(np.asarray(x, dtype=np.float64))
        return self._loss_for(y)(logits, y)

    def update(
        self, x: np.ndarray, y: np.ndarray, epochs: int | None = None
    ) -> list[float]:
        """Fine-tune on the enlarged training set (Algorithm 2, line 12).

        Warm-start continuation of ``fit``: weights and optimizer state
        are kept, so each active-learning round adjusts rather than
        retrains the model.
        """
        return self.fit(x, y, epochs=epochs)

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("classifier is not trained")

    def _prepare(self, x: np.ndarray, prescaled: bool) -> np.ndarray:
        self._check_fitted()
        if prescaled:
            # e.g. an InferenceSession's cache, already in compute dtype
            return self.policy.compute(np.asarray(x))
        x = np.asarray(x, dtype=np.float64)
        return self.scaler.transform(x, policy=self.policy)

    @contract(x="*[N,C,H,W]", returns="f8[N,2]")
    def predict_logits(
        self, x: np.ndarray, prescaled: bool = False
    ) -> np.ndarray:
        """Raw logits; ``prescaled=True`` skips the input scaler (for
        callers holding a cached scaled tensor, e.g. an InferenceSession).
        """
        x = self._prepare(x, prescaled)
        logits = self.network.predict_logits(
            x, batch_size=max(self.batch_size, 128)
        )
        return self.policy.boundary(logits)

    @contract(x="*[N,C,H,W]", returns="f8[N,2]")
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Uncalibrated softmax probabilities (Eq. (4))."""
        return softmax(self.predict_logits(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_logits(x).argmax(axis=1)

    @contract(x="*[N,C,H,W]")
    def predict_full(
        self,
        x: np.ndarray,
        normalize: bool = True,
        prescaled: bool = False,
    ) -> FullPrediction:
        """Logits *and* embedding features in a single forward pass.

        The active-learning loop needs both for every query batch
        (calibrated probabilities for uncertainty, FC features for
        diversity); tapping the embedding layer during the logits sweep
        halves the inference cost versus calling :meth:`predict_logits`
        and :meth:`embeddings` separately, with bit-identical results.
        """
        x = self._prepare(x, prescaled)
        step = max(self.batch_size, 128)
        logits_parts = []
        feature_parts = []
        for start in range(0, len(x), step):
            logits, taps = self.network.forward(
                x[start : start + step], taps=[self._embedding_index]
            )
            logits_parts.append(logits)
            feature_parts.append(taps[self._embedding_index])
        logits = self.policy.boundary(np.concatenate(logits_parts, axis=0))
        features = self.policy.boundary(np.concatenate(feature_parts, axis=0))
        if normalize:
            features = self._normalize_embeddings(features)
        return FullPrediction(logits=logits, embeddings=features)

    @staticmethod
    def _normalize_embeddings(features: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        return features / np.maximum(norms, 1e-12)

    @contract(x="*[N,C,H,W]", returns="f8[N,D]")
    def embeddings(
        self,
        x: np.ndarray,
        normalize: bool = True,
        prescaled: bool = False,
    ) -> np.ndarray:
        """FC-layer embedding features for the diversity metric.

        L2-normalized by default so that the inner-product distance of
        Eq. (8) lies in [0, 2] (practically [0, 1] for ReLU features).
        """
        x = self._prepare(x, prescaled)
        outputs = []
        step = max(self.batch_size, 128)
        for start in range(0, len(x), step):
            outputs.append(
                self.network.forward_to(x[start : start + step],
                                        self._embedding_index)
            )
        features = self.policy.boundary(np.concatenate(outputs, axis=0))
        if normalize:
            features = self._normalize_embeddings(features)
        return features

    def clone_untrained(self) -> "HotspotClassifier":
        """Fresh classifier with identical hyperparameters (new weights)."""
        return HotspotClassifier(
            input_shape=self.input_shape,
            arch=self.arch,
            lr=self.lr,
            batch_size=self.batch_size,
            epochs=self.epochs,
            class_weight=self.class_weight,
            seed=self.seed,
            augment=self.augment,
            augment_block_size=self.augment_block_size,
            precision=self.precision,
        )

    # ------------------------------------------------------------------
    # training-state access (checkpoint/resume support)
    # ------------------------------------------------------------------
    def optimizer_state_arrays(self) -> dict[str, np.ndarray]:
        """Optimizer slot state as a flat ``str -> ndarray`` mapping
        (npz-serializable; see :func:`repro.nn.optim.flatten_state`)."""
        return flatten_state(self._optimizer.get_state())

    def restore_optimizer_state(self, flat: dict) -> None:
        """Inverse of :meth:`optimizer_state_arrays`."""
        self._optimizer.set_state(unflatten_state(flat))

    def shuffle_rng_state(self) -> dict:
        """Bit state of the minibatch-shuffle RNG — part of a run
        checkpoint so resumed training permutes batches identically."""
        return self._shuffle_rng.bit_generator.state

    def set_shuffle_rng_state(self, state: dict) -> None:
        self._shuffle_rng.bit_generator.state = state

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _archive_meta(self, temperature: float | None) -> dict:
        return {
            "format_version": SAVE_FORMAT_VERSION,
            "arch": self.arch,
            "input_shape": list(self.input_shape),
            "optimizer": type(self._optimizer).__name__,
            "temperature": temperature,
        }

    def save(self, path, temperature: float | None = None) -> None:
        """Serialize the full trainable state to an ``.npz`` archive.

        Besides weights and scaler statistics the archive carries the
        optimizer slot state (so a loaded model continues training on
        the same trajectory instead of silently restarting Adam with
        cold moments) and, when given, the fitted temperature ``T``.
        """
        self._check_fitted()
        payload = {
            f"net/{key}": value
            for key, value in self.network.get_weights().items()
        }
        payload.update(
            {
                f"optim/{key}": value
                for key, value in self.optimizer_state_arrays().items()
            }
        )
        payload["scaler/mean"] = self.scaler.mean_
        payload["scaler/std"] = self.scaler.std_
        payload["meta/json"] = np.array(
            json.dumps(self._archive_meta(temperature))
        )
        np.savez_compressed(path, **payload)

    def load(self, path) -> float | None:
        """Restore state saved by :meth:`save`; returns the stored
        temperature (``None`` when the archive carries none).

        Fails loudly with :class:`ValueError` describing the schema or
        architecture mismatch — never a raw ``KeyError`` from a weight
        dict — so a wrong-architecture restore is diagnosable.
        """
        with np.load(path) as archive:
            files = set(archive.files)
            if "meta/json" not in files:
                raise ValueError(
                    f"{path} is not a classifier archive (no 'meta/json' "
                    "entry; re-save with HotspotClassifier.save)"
                )
            meta = json.loads(str(archive["meta/json"]))
            if meta.get("format_version") != SAVE_FORMAT_VERSION:
                raise ValueError(
                    f"archive format {meta.get('format_version')!r} != "
                    f"supported {SAVE_FORMAT_VERSION}"
                )
            if meta["arch"] != self.arch or tuple(
                meta["input_shape"]
            ) != self.input_shape:
                raise ValueError(
                    "architecture mismatch: archive holds "
                    f"arch={meta['arch']!r} input_shape="
                    f"{tuple(meta['input_shape'])}, classifier is "
                    f"arch={self.arch!r} input_shape={self.input_shape}"
                )
            if meta["optimizer"] != type(self._optimizer).__name__:
                raise ValueError(
                    f"optimizer mismatch: archive holds "
                    f"{meta['optimizer']} state, classifier uses "
                    f"{type(self._optimizer).__name__}"
                )
            weights = {
                key[len("net/"):]: archive[key]
                for key in files
                if key.startswith("net/")
            }
            optim = {
                key[len("optim/"):]: archive[key]
                for key in files
                if key.startswith("optim/")
            }
            try:
                self.network.set_weights(weights)
            except (KeyError, ValueError) as exc:
                raise ValueError(
                    f"archive does not match the {self.arch!r} network "
                    f"(spec {self.network.weights_spec()}): {exc}"
                ) from exc
            self.restore_optimizer_state(optim)
            self.scaler.mean_ = archive["scaler/mean"]
            self.scaler.std_ = archive["scaler/std"]
        self.scaler_version += 1
        self._fitted = True
        return meta["temperature"]
