"""Per-channel standardization of DCT feature tensors.

DCT coefficients have wildly different scales (the DC channel is an
order of magnitude larger than high-frequency channels), so the CNN
trains on standardized tensors.  The scaler is fitted once on the
*unlabeled* pool — an unsupervised statistic, so no label leakage.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..nn.runtime import PrecisionPolicy

__all__ = ["TensorScaler"]


class TensorScaler:
    """Standardize ``(N, C, H, W)`` tensors per channel."""

    def __init__(self, eps: float = 1e-8) -> None:
        self.eps = eps
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    @contract(x="f8[N,C,H,W]")
    def fit(self, x: np.ndarray) -> "TensorScaler":
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W), got {x.shape}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean_ = x.mean(axis=(0, 2, 3), keepdims=True)[0]
        self.std_ = x.std(axis=(0, 2, 3), keepdims=True)[0] + self.eps
        return self

    @contract(x="f8[N,C,H,W]", returns="f8[N,C,H,W]|f4[N,C,H,W]")
    def transform(
        self, x: np.ndarray, policy: PrecisionPolicy | None = None
    ) -> np.ndarray:
        """Standardize ``x``; a fast ``policy`` computes (and returns) in
        the float32 compute dtype — the classifier's declared precision
        boundary — while the default stays bit-exact float64."""
        if self.mean_ is None:
            raise RuntimeError("TensorScaler is not fitted")
        if policy is None or policy.is_exact:
            return (x - self.mean_[None]) / self.std_[None]
        xc = policy.compute(x)
        mean = policy.compute(self.mean_)
        std = policy.compute(self.std_)
        return (xc - mean[None]) / std[None]

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
