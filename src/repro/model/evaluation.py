"""Classifier evaluation metrics.

Detector-quality metrics beyond the paper's PSHD accuracy: confusion
counts, precision/recall/F1, ROC and precision-recall curves with exact
trapezoidal AUC — used by the extended benches and by downstream users
tuning detection thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfusionMatrix",
    "confusion_matrix",
    "roc_curve",
    "pr_curve",
    "auc",
    "classification_report",
]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts (positive class = hotspot = 1)."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_alarm_rate(self) -> float:
        """FPR — the 'false alarm issue' the hotspot literature tracks."""
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0


def _validate(y_true: np.ndarray, other: np.ndarray, name: str) -> None:
    if y_true.shape != other.shape:
        raise ValueError(f"y_true and {name} shapes differ")
    if y_true.size == 0:
        raise ValueError("empty inputs")


def confusion_matrix(y_true, y_pred) -> ConfusionMatrix:
    """Binary confusion matrix from integer labels/predictions."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    _validate(y_true, y_pred, "y_pred")
    return ConfusionMatrix(
        tp=int(((y_pred == 1) & (y_true == 1)).sum()),
        fp=int(((y_pred == 1) & (y_true == 0)).sum()),
        tn=int(((y_pred == 0) & (y_true == 0)).sum()),
        fn=int(((y_pred == 0) & (y_true == 1)).sum()),
    )


def roc_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds), thresholds descending.

    Standard construction: sweep the score threshold through every
    distinct score; the curve starts at (0, 0) and ends at (1, 1).
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    _validate(y_true, scores, "scores")
    n_pos = int((y_true == 1).sum())
    n_neg = int((y_true == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve requires both classes present")

    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]
    tps = np.cumsum(sorted_true == 1)
    fps = np.cumsum(sorted_true == 0)
    # keep only the last index of each distinct score (threshold steps)
    distinct = np.r_[np.diff(sorted_scores) != 0, True]
    tpr = np.r_[0.0, tps[distinct] / n_pos]
    fpr = np.r_[0.0, fps[distinct] / n_neg]
    thresholds = np.r_[np.inf, sorted_scores[distinct]]
    return fpr, tpr, thresholds


def pr_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(precision, recall, thresholds), thresholds descending."""
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    _validate(y_true, scores, "scores")
    n_pos = int((y_true == 1).sum())
    if n_pos == 0:
        raise ValueError("pr_curve requires positive samples")

    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]
    tps = np.cumsum(sorted_true == 1)
    predicted = np.arange(1, len(sorted_true) + 1)
    distinct = np.r_[np.diff(sorted_scores) != 0, True]
    precision = tps[distinct] / predicted[distinct]
    recall = tps[distinct] / n_pos
    return precision, recall, sorted_scores[distinct]


def auc(x: np.ndarray, y: np.ndarray) -> float:
    """Trapezoidal area under a curve given by (x, y) points."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("auc needs matching arrays of length >= 2")
    order = np.argsort(x, kind="stable")
    return float(np.trapezoid(y[order], x[order]))


def classification_report(y_true, y_pred) -> str:
    """Human-readable summary of binary detector quality."""
    cm = confusion_matrix(y_true, y_pred)
    return (
        f"tp={cm.tp} fp={cm.fp} tn={cm.tn} fn={cm.fn}\n"
        f"accuracy={cm.accuracy:.4f} precision={cm.precision:.4f} "
        f"recall={cm.recall:.4f} f1={cm.f1:.4f} "
        f"false_alarm_rate={cm.false_alarm_rate:.4f}"
    )
