"""Non-QP batch-selection baselines and ready-made framework configs.

* ``ts_selector`` — the "TS" column of Table II: top-k by calibrated
  hotspot-aware uncertainty alone (temperature scaling, no diversity).
* ``random_selector`` — uniform random batch (sanity floor).
* ``kcenter_selector`` — greedy k-centre (core-set style) diversity-only
  selection, an extra baseline beyond the paper.

``make_config`` builds a :class:`~repro.core.framework.FrameworkConfig`
for any named method so experiment code stays declarative; it is a thin
wrapper over the method registry (:mod:`repro.engine.registry`), where
every selector below is registered by name.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.framework import FrameworkConfig, SelectionContext
from ..core.sampling import SamplingConfig
from ..core.uncertainty import hotspot_aware_uncertainty
from ..engine.registry import MethodSpec, get_method, register_method
from .badge import badge_selector, cluster_selector
from .qp import qp_selector

__all__ = [
    "ts_selector",
    "random_selector",
    "kcenter_selector",
    "make_config",
    "METHODS",
]


def ts_selector(context: SelectionContext) -> np.ndarray:
    """Top-k by calibrated hotspot-aware uncertainty (no diversity)."""
    scores = hotspot_aware_uncertainty(context.calibrated_probs)
    k = min(context.k, len(scores))
    return np.argsort(-scores, kind="stable")[:k].astype(np.int64)


def random_selector(context: SelectionContext) -> np.ndarray:
    """Uniform random batch."""
    n = len(context.calibrated_probs)
    k = min(context.k, n)
    return context.rng.choice(n, size=k, replace=False).astype(np.int64)


def kcenter_selector(context: SelectionContext) -> np.ndarray:
    """Greedy k-centre over embeddings (diversity-only core-set)."""
    embeddings = np.asarray(context.embeddings, dtype=np.float64)
    n = len(embeddings)
    k = min(context.k, n)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    chosen = [int(np.argmax(np.linalg.norm(embeddings, axis=1)))]
    distances = np.linalg.norm(embeddings - embeddings[chosen[0]], axis=1)
    while len(chosen) < k:
        nxt = int(np.argmax(distances))
        chosen.append(nxt)
        distances = np.minimum(
            distances, np.linalg.norm(embeddings - embeddings[nxt], axis=1)
        )
    return np.array(chosen, dtype=np.int64)


METHODS = ("ours", "ts", "qp", "random", "kcenter", "badge", "cluster")


register_method(MethodSpec(
    name="ours",
    selector=None,  # built-in EntropySampling (Alg. 1)
    configure=lambda cfg: replace(cfg, sampling=SamplingConfig()),
    description="EntropySampling (Alg. 1), keeps unselected queries",
))
register_method(MethodSpec(
    name="ts",
    selector=ts_selector,
    description="calibrated hotspot-aware uncertainty only",
))
# [14] runs two-step sampling with a small first-step query set (about
# 2k) and discards its unselected remainder each round — the
# pattern-loss behaviour the paper critiques.
register_method(MethodSpec(
    name="qp",
    selector=qp_selector,
    discard_query_rest=True,
    configure=lambda cfg: replace(cfg, n_query=max(2 * cfg.k_batch, 2)),
    description="uncalibrated BvSB + relaxed-QP diversity, per [14]",
))
register_method(MethodSpec(
    name="random",
    selector=random_selector,
    description="uniform random batch (sanity floor)",
))
register_method(MethodSpec(
    name="kcenter",
    selector=kcenter_selector,
    description="greedy k-centre over embeddings (core-set style)",
))
register_method(MethodSpec(
    name="badge",
    selector=badge_selector,
    description="k-means++ seeding over gradient embeddings",
))
register_method(MethodSpec(
    name="cluster",
    selector=cluster_selector,
    description="k-means clustering diversity",
))


def make_config(method: str, base: FrameworkConfig | None = None) -> FrameworkConfig:
    """Framework configuration for a named Table II method.

    ``base`` carries the shared hyperparameters (batch sizes, epochs,
    seed); only the selection strategy differs between methods — see
    the registry entries above for what each name does.
    """
    return get_method(method).build_config(base)
