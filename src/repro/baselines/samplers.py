"""Non-QP batch-selection baselines and ready-made framework configs.

* ``ts_selector`` — the "TS" column of Table II: top-k by calibrated
  hotspot-aware uncertainty alone (temperature scaling, no diversity).
* ``random_selector`` — uniform random batch (sanity floor).
* ``kcenter_selector`` — greedy k-centre (core-set style) diversity-only
  selection, an extra baseline beyond the paper.

``make_config`` builds a :class:`~repro.core.framework.FrameworkConfig`
for any named method so experiment code stays declarative.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.framework import FrameworkConfig, SelectionContext
from ..core.sampling import SamplingConfig
from ..core.uncertainty import hotspot_aware_uncertainty
from .badge import badge_selector, cluster_selector
from .qp import qp_selector

__all__ = [
    "ts_selector",
    "random_selector",
    "kcenter_selector",
    "make_config",
    "METHODS",
]


def ts_selector(context: SelectionContext) -> np.ndarray:
    """Top-k by calibrated hotspot-aware uncertainty (no diversity)."""
    scores = hotspot_aware_uncertainty(context.calibrated_probs)
    k = min(context.k, len(scores))
    return np.argsort(-scores, kind="stable")[:k].astype(np.int64)


def random_selector(context: SelectionContext) -> np.ndarray:
    """Uniform random batch."""
    n = len(context.calibrated_probs)
    k = min(context.k, n)
    return context.rng.choice(n, size=k, replace=False).astype(np.int64)


def kcenter_selector(context: SelectionContext) -> np.ndarray:
    """Greedy k-centre over embeddings (diversity-only core-set)."""
    embeddings = np.asarray(context.embeddings, dtype=np.float64)
    n = len(embeddings)
    k = min(context.k, n)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    chosen = [int(np.argmax(np.linalg.norm(embeddings, axis=1)))]
    distances = np.linalg.norm(embeddings - embeddings[chosen[0]], axis=1)
    while len(chosen) < k:
        nxt = int(np.argmax(distances))
        chosen.append(nxt)
        distances = np.minimum(
            distances, np.linalg.norm(embeddings - embeddings[nxt], axis=1)
        )
    return np.array(chosen, dtype=np.int64)


METHODS = ("ours", "ts", "qp", "random", "kcenter", "badge", "cluster")


def make_config(method: str, base: FrameworkConfig | None = None) -> FrameworkConfig:
    """Framework configuration for a named Table II method.

    ``base`` carries the shared hyperparameters (batch sizes, epochs,
    seed); only the selection strategy differs between methods:

    * ``ours``   — EntropySampling (Alg. 1), keeps unselected queries.
    * ``ts``     — calibrated uncertainty only.
    * ``qp``     — uncalibrated BvSB + relaxed-QP diversity, and discards
      unselected query samples, both mirroring [14].
    * ``random`` / ``kcenter`` — sanity baselines.
    """
    base = base if base is not None else FrameworkConfig()
    if method == "ours":
        return replace(base, selector=None, method_name="ours",
                       discard_query_rest=False,
                       sampling=SamplingConfig())
    if method == "ts":
        return replace(base, selector=ts_selector, method_name="ts",
                       discard_query_rest=False)
    if method == "qp":
        # [14] runs two-step sampling with a small first-step query set
        # (about 2k) and discards its unselected remainder each round —
        # the pattern-loss behaviour the paper critiques.
        return replace(base, selector=qp_selector, method_name="qp",
                       discard_query_rest=True,
                       n_query=max(2 * base.k_batch, 2))
    if method == "random":
        return replace(base, selector=random_selector, method_name="random",
                       discard_query_rest=False)
    if method == "kcenter":
        return replace(base, selector=kcenter_selector, method_name="kcenter",
                       discard_query_rest=False)
    if method == "badge":
        return replace(base, selector=badge_selector, method_name="badge",
                       discard_query_rest=False)
    if method == "cluster":
        return replace(base, selector=cluster_selector, method_name="cluster",
                       discard_query_rest=False)
    raise ValueError(f"unknown method {method!r}; known: {METHODS}")
