"""BADGE and cluster-diversity batch selectors.

Two further literature baselines the paper cites in its related work:

* **BADGE** (Ash et al. [13]): embed each sample by its hypothetical
  loss gradient at the output layer — the embedding scaled by the
  distance of the prediction from a hard label — then pick a batch with
  k-means++ seeding, which is simultaneously uncertainty-aware (gradient
  magnitude) and diverse (D^2 spread).
* **Cluster diversity** (Zhang & Rudnicky [11] style): k-means the
  query embeddings into ``k`` clusters and take the most uncertain
  sample of each cluster.
"""

from __future__ import annotations

import numpy as np

from ..core.framework import SelectionContext
from ..core.uncertainty import bvsb_uncertainty
from ..stats.kmeans import KMeans, kmeans_pp_init

__all__ = ["badge_gradient_embedding", "badge_selector", "cluster_selector"]


def badge_gradient_embedding(
    probs: np.ndarray, embeddings: np.ndarray
) -> np.ndarray:
    """Per-sample last-layer gradient embeddings.

    For softmax cross-entropy with pseudo-label ``argmax p``, the
    gradient w.r.t. the last-layer weights for class c is
    ``(p_c - 1[c = argmax]) x`` — stacking the two class blocks gives a
    ``2 * d`` embedding whose norm grows with prediction uncertainty.
    """
    probs = np.asarray(probs, dtype=np.float64)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[1] != 2:
        raise ValueError(f"expected (N, 2) probabilities, got {probs.shape}")
    if len(probs) != len(embeddings):
        raise ValueError("probs and embeddings lengths differ")
    pseudo = probs.argmax(axis=1)
    coeff = probs.copy()
    coeff[np.arange(len(probs)), pseudo] -= 1.0  # (N, 2)
    # block outer product -> (N, 2 * d)
    return (coeff[:, :, None] * embeddings[:, None, :]).reshape(len(probs), -1)


def badge_selector(context: SelectionContext) -> np.ndarray:
    """BADGE: k-means++ seeding over gradient embeddings."""
    n = len(context.calibrated_probs)
    k = min(context.k, n)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    grads = badge_gradient_embedding(context.raw_probs, context.embeddings)
    centres = kmeans_pp_init(grads, k, context.rng)
    chosen: list[int] = []
    available = np.ones(n, dtype=bool)
    for centre in centres:
        distances = np.linalg.norm(grads - centre, axis=1)
        distances[~available] = np.inf
        pick = int(np.argmin(distances))
        chosen.append(pick)
        available[pick] = False
    return np.array(chosen, dtype=np.int64)


def cluster_selector(context: SelectionContext) -> np.ndarray:
    """Cluster diversity: most-uncertain representative per k-means
    cluster of the embedding space."""
    n = len(context.calibrated_probs)
    k = min(context.k, n)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    uncertainty = bvsb_uncertainty(context.calibrated_probs)
    seed = int(context.rng.integers(0, 2**31))
    km = KMeans(k, seed=seed).fit(np.asarray(context.embeddings))
    chosen: list[int] = []
    for cluster in range(k):
        members = np.flatnonzero(km.labels_ == cluster)
        if len(members) == 0:
            continue
        chosen.append(int(members[np.argmax(uncertainty[members])]))
    # pad from global uncertainty order if empty clusters left gaps
    if len(chosen) < k:
        order = np.argsort(-uncertainty, kind="stable")
        for idx in order:
            if int(idx) not in chosen:
                chosen.append(int(idx))
            if len(chosen) == k:
                break
    return np.array(chosen[:k], dtype=np.int64)
