"""Pattern-matching PSHD baselines (the PM columns of Table II).

The pattern-matching flow of Chen et al. [2] scans the full chip and
maintains a library of representative patterns: every clip's *core
pattern* is matched against the library under some criterion; a miss
sends the clip to lithography simulation (charging one litho-clip) and
adds it to the library, while a hit inherits the stored label for free.

Matching works on the core region — the pattern whose printability the
clip owns — so recurrences of a pattern under different neighbour
context still match, as in contest-style pattern classification.

Four criteria reproduce the paper's four PM columns:

* ``exact``  — core-geometry-hash equality (PM-exact): labels are always
  correct, but placement jitter makes most instances distinct, so nearly
  every clip pays for simulation — the enormous litho cost of Table II.
* ``a95`` / ``a90`` — fuzzy matching: cosine similarity of core DCT
  features at threshold 0.95 / 0.90.  Far cheaper, but near-critical and
  safe variants of the same motif are more than 90% similar, so
  inherited labels go wrong — the accuracy collapse the paper reports.
* ``e2`` — fuzzy matching by quantized core-signature edit distance
  <= 2: structural near-equality, between exact and a95 in both cost and
  risk.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.metrics import PSHDResult, litho_overhead, pshd_accuracy
from ..data.dataset import ClipDataset, DatasetLabeler

__all__ = ["PatternMatcher", "run_pattern_matching", "PM_MODES"]

PM_MODES = ("exact", "a95", "a90", "e2")

#: quantization levels of the e2 signature string
_E2_LEVELS = 16


def _core_block_range(dataset: ClipDataset, blocks: int) -> tuple[int, int]:
    """DCT block indices fully inside the core region."""
    clip = dataset.clips[0]
    width, _ = clip.size
    core = clip.core_local()
    frac_lo = core.x0 / width
    frac_hi = core.x1 / width
    b0 = int(np.ceil(frac_lo * blocks))
    b1 = int(np.floor(frac_hi * blocks))
    if b1 <= b0:  # degenerate core; fall back to everything
        return 0, blocks
    return b0, b1


def core_features(dataset: ClipDataset) -> np.ndarray:
    """Flattened core-region DCT features of every clip."""
    tensors = dataset.tensors
    blocks = tensors.shape[2]
    b0, b1 = _core_block_range(dataset, blocks)
    return tensors[:, :, b0:b1, b0:b1].reshape(len(dataset), -1)


class PatternMatcher:
    """Streaming pattern library under one matching criterion."""

    def __init__(self, mode: str, dataset: ClipDataset) -> None:
        if mode not in PM_MODES:
            raise ValueError(f"mode must be one of {PM_MODES}, got {mode!r}")
        if len(dataset) == 0:
            raise ValueError("cannot match against an empty dataset")
        self.mode = mode
        self.dataset = dataset
        self._labels: list[int] = []
        self._hash_library: dict[str, int] = {}
        self._feature_rows: list[np.ndarray] = []
        self._strings: list[np.ndarray] = []
        if mode in ("a95", "a90"):
            features = core_features(dataset)
            norms = np.linalg.norm(features, axis=1, keepdims=True)
            self._unit_features = features / np.maximum(norms, 1e-12)
            self.threshold = 0.95 if mode == "a95" else 0.90
        elif mode == "e2":
            # signature: quantized DC-channel core blocks (structural code)
            tensors = dataset.tensors
            b0, b1 = _core_block_range(dataset, tensors.shape[2])
            dc = tensors[:, 0, b0:b1, b0:b1].reshape(len(dataset), -1)
            span = dc.max() - dc.min()
            scaled = (dc - dc.min()) / (span if span > 0 else 1.0)
            self._codes = np.minimum(
                (scaled * _E2_LEVELS).astype(np.int64), _E2_LEVELS - 1
            )

    def match(self, index: int) -> int | None:
        """Library label for clip ``index``, or None on a miss."""
        if self.mode == "exact":
            key = str(self.dataset.meta["core_hashes"][index])
            return self._hash_library.get(key)
        if self.mode in ("a95", "a90"):
            if not self._feature_rows:
                return None
            library = np.stack(self._feature_rows)
            sims = library @ self._unit_features[index]
            best = int(np.argmax(sims))
            if sims[best] >= self.threshold:
                return self._labels[best]
            return None
        # e2: Hamming distance <= 2 between signature strings
        if not self._strings:
            return None
        library = np.stack(self._strings)
        distances = (library != self._codes[index]).sum(axis=1)
        best = int(np.argmin(distances))
        if distances[best] <= 2:
            return self._labels[best]
        return None

    def insert(self, index: int, label: int) -> None:
        """Add a litho-labeled clip to the library."""
        self._labels.append(int(label))
        if self.mode == "exact":
            key = str(self.dataset.meta["core_hashes"][index])
            self._hash_library[key] = int(label)
        elif self.mode in ("a95", "a90"):
            self._feature_rows.append(self._unit_features[index])
        else:
            self._strings.append(self._codes[index])

    @property
    def library_size(self) -> int:
        if self.mode == "exact":
            return len(self._hash_library)
        return len(self._labels)


def run_pattern_matching(
    dataset: ClipDataset, mode: str = "exact", seed: int = 0, bus=None
) -> PSHDResult:
    """Full-chip PSHD with a pattern-matching flow.

    Scans clips in a seeded random order (scan order only decides which
    instance of a pattern pays the litho charge).  Returns a
    :class:`PSHDResult` scored with Eqs. (1)-(2): litho-simulated clips
    count as "training" clips; clips that inherited a wrong hotspot label
    are false alarms; inherited correct hotspot labels are hits.

    The scan is inherently streaming (each verdict may grow the library
    consulted by the next clip), so labeling cannot batch; a ``bus``
    still gets one summary ``labels_computed`` event so PM flows report
    label-cache economics in the same shape as the data plane.
    """
    started = time.perf_counter()
    matcher = PatternMatcher(mode, dataset)
    labeler = DatasetLabeler(dataset)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))

    hits = 0
    false_alarms = 0
    hs_simulated = 0
    for index in order:
        index = int(index)
        inherited = matcher.match(index)
        if inherited is None:
            label = labeler.label(index)
            matcher.insert(index, label)
            hs_simulated += label
        else:
            actual = int(dataset.labels[index])
            if inherited == 1 and actual == 1:
                hits += 1
            elif inherited == 1 and actual == 0:
                false_alarms += 1

    elapsed = time.perf_counter() - started
    if bus is not None:
        from ..litho.labeler import SECONDS_PER_LITHO_CLIP

        bus.emit(
            "labels_computed",
            n_clips=len(dataset),
            cache_hits=len(dataset) - labeler.query_count,
            cache_misses=labeler.query_count,
            deduped=0,
            simulated_seconds=labeler.query_count * SECONDS_PER_LITHO_CLIP,
            label_seconds=elapsed,
        )
    accuracy = pshd_accuracy(hs_simulated, 0, hits, dataset.n_hotspots)
    litho = litho_overhead(labeler.query_count, 0, false_alarms)
    return PSHDResult(
        benchmark=dataset.name,
        method=f"pm-{mode}",
        accuracy=accuracy,
        litho=litho,
        hits=hits,
        false_alarms=false_alarms,
        n_train=labeler.query_count,
        n_val=0,
        hs_total=dataset.n_hotspots,
        pshd_seconds=elapsed,
        labeled=labeler.labeled_indices,
    )
