"""Baseline methods (S10): pattern matching (exact + fuzzy), the TS and
QP active-learning baselines, and extra sanity selectors.

Importing this package registers every built-in method — the AL
selectors (from :mod:`.samplers`) and the ``pm-*`` pattern-matching
flows (below) — in the engine method registry, making them reachable by
name from the framework, the CLI and the bench harness.
"""

import functools

from ..engine.registry import MethodSpec, register_method
from .badge import badge_gradient_embedding, badge_selector, cluster_selector
from .pattern_matching import PM_MODES, PatternMatcher, run_pattern_matching
from .qp import project_capped_simplex, qp_selector, solve_qp_relaxation
from .samplers import (
    METHODS,
    kcenter_selector,
    make_config,
    random_selector,
    ts_selector,
)

for _mode in PM_MODES:
    register_method(MethodSpec(
        name=f"pm-{_mode}",
        runner=functools.partial(run_pattern_matching, mode=_mode),
        description=f"pattern-matching flow, {_mode} criterion",
    ))
del _mode

__all__ = [
    "PatternMatcher",
    "run_pattern_matching",
    "PM_MODES",
    "project_capped_simplex",
    "solve_qp_relaxation",
    "qp_selector",
    "ts_selector",
    "random_selector",
    "kcenter_selector",
    "badge_gradient_embedding",
    "badge_selector",
    "cluster_selector",
    "make_config",
    "METHODS",
]
