"""Baseline methods (S10): pattern matching (exact + fuzzy), the TS and
QP active-learning baselines, and extra sanity selectors."""

from .badge import badge_gradient_embedding, badge_selector, cluster_selector
from .pattern_matching import PM_MODES, PatternMatcher, run_pattern_matching
from .qp import project_capped_simplex, qp_selector, solve_qp_relaxation
from .samplers import (
    METHODS,
    kcenter_selector,
    make_config,
    random_selector,
    ts_selector,
)

__all__ = [
    "PatternMatcher",
    "run_pattern_matching",
    "PM_MODES",
    "project_capped_simplex",
    "solve_qp_relaxation",
    "qp_selector",
    "ts_selector",
    "random_selector",
    "kcenter_selector",
    "badge_gradient_embedding",
    "badge_selector",
    "cluster_selector",
    "make_config",
    "METHODS",
]
