"""QP-based batch sampling baseline (Yang et al., TCAD 2020 — "QP" in
Table II).

The reference method selects a batch by relaxing the integer program

    min_x  (1/2) x^T K x  -  lambda * u^T x
    s.t.   x in [0, 1]^n,   sum(x) = k

where ``K = X X^T`` is the embedding similarity kernel (penalizing
similar pairs being co-selected) and ``u`` the *uncalibrated* BvSB
uncertainty — the two flaws the paper fixes: no calibration, and an
expensive relaxed QP whose rounding loses diversity.  The relaxation is
solved with projected gradient descent (projection onto the scaled
simplex-in-a-box), then the top-k coordinates are rounded to the batch.
"""

from __future__ import annotations

import numpy as np

from ..core.framework import SelectionContext
from ..core.uncertainty import bvsb_uncertainty

__all__ = ["project_capped_simplex", "solve_qp_relaxation", "qp_selector"]


def project_capped_simplex(v: np.ndarray, k: float, iters: int = 60) -> np.ndarray:
    """Euclidean projection of ``v`` onto ``{x in [0,1]^n : sum x = k}``.

    Bisection on the Lagrange multiplier of the sum constraint: the
    projection is ``clip(v - tau, 0, 1)`` with ``tau`` chosen so the sum
    equals ``k``.
    """
    v = np.asarray(v, dtype=np.float64)
    n = len(v)
    if not 0 <= k <= n:
        raise ValueError(f"k={k} infeasible for dimension {n}")
    lo = v.min() - 1.0
    hi = v.max()
    for _ in range(iters):
        tau = 0.5 * (lo + hi)
        total = np.clip(v - tau, 0.0, 1.0).sum()
        if total > k:
            lo = tau
        else:
            hi = tau
    return np.clip(v - 0.5 * (lo + hi), 0.0, 1.0)


def solve_qp_relaxation(
    kernel: np.ndarray,
    uncertainty: np.ndarray,
    k: int,
    tradeoff: float = 1.0,
    lr: float | None = None,
    iters: int = 150,
) -> np.ndarray:
    """Projected gradient descent on the relaxed batch-selection QP.

    Returns the relaxed solution ``x`` in [0, 1]^n with sum k.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    n = kernel.shape[0]
    if kernel.shape != (n, n):
        raise ValueError(f"kernel must be square, got {kernel.shape}")
    if len(uncertainty) != n:
        raise ValueError("uncertainty length does not match kernel")
    k = min(k, n)
    if lr is None:
        # Lipschitz-safe step from the kernel's largest row sum
        lr = 1.0 / max(np.abs(kernel).sum(axis=1).max(), 1e-9)

    x = np.full(n, k / n)
    for _ in range(iters):
        grad = kernel @ x - tradeoff * uncertainty
        x = project_capped_simplex(x - lr * grad, k)
    return x


def qp_selector(context: SelectionContext) -> np.ndarray:
    """Batch selector reproducing the QP method for the framework hook.

    Uses **raw** (uncalibrated) probabilities for BvSB uncertainty, the
    embedding Gram matrix for the kernel, and rounds the relaxed QP
    solution by taking its top-k coordinates.
    """
    n = len(context.raw_probs)
    k = min(context.k, n)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    uncertainty = bvsb_uncertainty(context.raw_probs)
    embeddings = np.asarray(context.embeddings, dtype=np.float64)
    kernel = embeddings @ embeddings.T
    x = solve_qp_relaxation(kernel, uncertainty, k)
    return np.argsort(-x, kind="stable")[:k].astype(np.int64)
