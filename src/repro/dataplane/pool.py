"""Chunked execution, optionally through a ``concurrent.futures`` pool.

The data plane's unit of work is the *chunk*: a slice of clips processed
by one vectorized kernel call.  :func:`map_chunks` dispatches chunks
serially (``workers == 0``, the safe single-process default) or over a
thread/process pool, always returning per-chunk results in input order.
The helpers are deliberately free of any dataplane imports so lower
layers (``repro.litho``, ``repro.data``) can reuse them without cycles.

A ``timeout`` turns on the **watchdog**: a pooled chunk that does not
answer within the deadline is treated as hung — its future is
cancelled/abandoned, ``on_timeout(chunk_index)`` fires, and the chunk
(plus any chunk the compromised pool had not finished) re-runs
serially in-process, so one stuck worker degrades throughput instead
of stalling the run forever.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Iterator, Optional, Sequence, TypeVar

from ..analysis.interleave import trace_point

__all__ = ["chunked", "imap_chunks", "map_chunks"]

T = TypeVar("T")
R = TypeVar("R")


def chunked(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    items = list(items)
    return [items[i : i + size] for i in range(0, len(items), size)]


def _iter_chunks(
    fn: Callable[[list[T]], R],
    parts: list[list[T]],
    workers: int,
    executor: str,
    timeout: Optional[float],
    on_timeout: Optional[Callable[[int], None]],
) -> Iterator[R]:
    """Yield per-chunk results in input order (lazy pool consumption).

    Only the *pool constructor* runs under the availability guard:
    start-up failures (restricted environments without process spawning)
    fall back to the serial path.  Exceptions raised by ``fn`` itself —
    including ``OSError`` from a task — always propagate; silently
    re-running chunks serially would mask real errors and double-execute
    side-effectful work (e.g. double-simulate litho clips).

    A watchdog ``timeout`` is the one sanctioned degradation: a chunk
    that never *answers* (as opposed to raising) is cancelled at the
    deadline and recomputed serially, and every later chunk the pool had
    not already finished is recomputed serially too — a hung worker has
    poisoned the pool, so no further deadline waits are spent on it.
    """
    if workers <= 0 or len(parts) <= 1:
        yield from (fn(part) for part in parts)
        return
    pool_cls = (
        ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    )
    try:
        pool = pool_cls(max_workers=min(workers, len(parts)))
    except (OSError, PermissionError):  # pool unavailable -> serial fallback
        pool = None
    if pool is None:
        yield from (fn(part) for part in parts)
        return
    hung = False
    try:
        futures = [pool.submit(fn, part) for part in parts]
        for index, future in enumerate(futures):
            if hung:
                # pool already compromised: reuse finished results,
                # recompute everything else in-process
                if future.done() and not future.cancelled():
                    yield future.result()
                else:
                    future.cancel()
                    yield fn(parts[index])
                continue
            try:
                result = future.result(timeout=timeout)
                trace_point("pool.chunk.done")
                yield result
            except FuturesTimeoutError:
                hung = True
                future.cancel()
                if on_timeout is not None:
                    on_timeout(index)
                yield fn(parts[index])
    finally:
        # a hung pool must not block interpreter progress on shutdown
        pool.shutdown(wait=not hung, cancel_futures=hung)


def imap_chunks(
    fn: Callable[[list[T]], R],
    items: Sequence[T],
    chunk_size: int,
    workers: int = 0,
    executor: str = "thread",
    timeout: Optional[float] = None,
    on_timeout: Optional[Callable[[int], None]] = None,
) -> Iterator[R]:
    """Lazy :func:`map_chunks`: an iterator of per-chunk results.

    Results arrive in input order as chunks complete, so callers can
    commit partial progress (e.g. cache litho verdicts per chunk); when
    ``fn`` raises for chunk ``N``, the exception surfaces after chunks
    ``0..N-1`` were already yielded.  ``timeout`` (seconds per pooled
    chunk) arms the watchdog; ``on_timeout`` receives the index of a
    chunk that was cancelled at the deadline and re-run serially.
    """
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive or None, got {timeout}")
    parts = chunked(items, chunk_size)
    if parts and workers > 0 and len(parts) > 1:
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}")
    return _iter_chunks(fn, parts, workers, executor, timeout, on_timeout)


def map_chunks(
    fn: Callable[[list[T]], R],
    items: Sequence[T],
    chunk_size: int,
    workers: int = 0,
    executor: str = "thread",
    timeout: Optional[float] = None,
    on_timeout: Optional[Callable[[int], None]] = None,
) -> list[R]:
    """Apply ``fn`` to every chunk of ``items``, in input order.

    ``workers == 0`` (or a single chunk) runs in-process with no
    executor.  Pool start-up failures fall back to the serial path —
    the data plane must never be less available than the eager loop it
    replaced — but task exceptions propagate (see :func:`_iter_chunks`).
    ``timeout``/``on_timeout`` arm the hung-worker watchdog.
    """
    return list(
        imap_chunks(
            fn, items, chunk_size, workers, executor, timeout, on_timeout
        )
    )
