"""Chunked execution, optionally through a ``concurrent.futures`` pool.

The data plane's unit of work is the *chunk*: a slice of clips processed
by one vectorized kernel call.  :func:`map_chunks` dispatches chunks
serially (``workers == 0``, the safe single-process default) or over a
thread/process pool, always returning per-chunk results in input order.
The helpers are deliberately free of any dataplane imports so lower
layers (``repro.litho``, ``repro.data``) can reuse them without cycles.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["chunked", "map_chunks"]

T = TypeVar("T")
R = TypeVar("R")


def chunked(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    items = list(items)
    return [items[i : i + size] for i in range(0, len(items), size)]


def map_chunks(
    fn: Callable[[list[T]], R],
    items: Sequence[T],
    chunk_size: int,
    workers: int = 0,
    executor: str = "thread",
) -> list[R]:
    """Apply ``fn`` to every chunk of ``items``, in input order.

    ``workers == 0`` (or a single chunk) runs in-process with no
    executor.  Pool start-up failures (restricted environments without
    process spawning) fall back to the serial path instead of erroring —
    the data plane must never be less available than the eager loop it
    replaced.
    """
    parts = chunked(items, chunk_size)
    if not parts:
        return []
    if workers <= 0 or len(parts) == 1:
        return [fn(part) for part in parts]

    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r}")
    pool_cls = (
        ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    )
    try:
        with pool_cls(max_workers=min(workers, len(parts))) as pool:
            return list(pool.map(fn, parts))
    except (OSError, PermissionError):  # pool unavailable -> serial fallback
        return [fn(part) for part in parts]
