"""Data plane (S13): chunked parallel extraction + content-addressed
caching + batched labeling.

The layer that turns layout clips into model-ready tensors and litho
labels for every consumer — benchmark builders, the CLI detect flow,
the AL framework's labelers and the bench harness:

* :class:`BatchFeatureExtractor` — chunked, vectorized, optionally
  pooled clip → DCT-tensor/flat extraction, bit-identical to the eager
  :class:`~repro.features.pipeline.FeatureExtractor` loops it replaces.
* :class:`FeatureCache` — content-addressed two-tier cache (in-memory
  LRU + on-disk ``.npz``) keyed by clip geometry hash and extractor
  parameters.
* :func:`map_chunks` / :func:`imap_chunks` — the shared chunk runners
  (serial default, thread or process pool; ``imap`` yields per-chunk
  results lazily for partial-progress commits) also used by the batched
  labelers in :mod:`repro.litho.labeler` and :mod:`repro.data.dataset`.
* :class:`DataPlaneConfig` — chunk size, worker count, executor flavour
  and cache-tier sizing in one value (also embedded in
  :class:`~repro.core.framework.FrameworkConfig`).
* :class:`StreamScanner` / :func:`scan_layout` — tiled streaming
  full-chip detection over a :class:`~repro.layout.tiles.TileGrid`:
  sharded work-stealing tile scheduling, per-tile verdict persistence,
  crash resume and incremental re-detection after layout edits (see
  :mod:`repro.dataplane.stream`).

Every request reports ``features_extracted`` / ``labels_computed``
events with cache hit/miss counts on an optional
:class:`~repro.engine.events.EventBus`.
"""

from .cache import CacheStats, FeatureCache, feature_key
from .config import EXECUTORS, DataPlaneConfig
from .extract import BatchFeatureExtractor, FeatureBatch
from .pool import chunked, imap_chunks, map_chunks
from .stream import (
    ScanReport,
    ShardScheduler,
    StreamConfig,
    StreamScanner,
    TileVerdictStore,
    model_score_fn,
    scan_layout,
)

__all__ = [
    "BatchFeatureExtractor",
    "FeatureBatch",
    "CacheStats",
    "FeatureCache",
    "feature_key",
    "DataPlaneConfig",
    "EXECUTORS",
    "chunked",
    "imap_chunks",
    "map_chunks",
    "ScanReport",
    "ShardScheduler",
    "StreamConfig",
    "StreamScanner",
    "TileVerdictStore",
    "model_score_fn",
    "scan_layout",
]
