"""Tiled streaming full-chip scan: sharded, resumable, incremental.

The AL loop of Algorithm 2 operates on an in-memory pool — the paper's
setting, where the benchmark fits in RAM.  Scanning a production chip
does not: the clip-window lattice of a full die runs to millions of
windows, and "extract everything, then score" is exactly the eager data
plane this module replaces.  A :class:`StreamScanner` walks a
:class:`~repro.layout.tiles.TileGrid` one tile at a time:

* **streaming** — each tile's clips are cut lazily off the layout's
  bucket index, encoded through the cached
  :class:`~repro.dataplane.extract.BatchFeatureExtractor`, scored, and
  released before the next tile is touched.  Peak memory is one tile's
  worth of geometry and features regardless of chip size.
* **sharding** — tiles are dealt round-robin onto per-shard work queues
  drained by one worker thread each; an idle worker *steals* from the
  back of the richest queue, so a shard that drew the dense corner of
  the chip does not serialize the scan.  Threads do the geometry work
  (bucket queries, content digests) concurrently; the compute step
  (feature encoding / inference / litho labeling) is serialized under
  one lock and parallelizes *internally* over the data-plane's chunk
  pool (``DataPlaneConfig.workers``) — that is where process-level
  parallelism lives.
* **resume + incremental re-detection** — with a ``state_dir``, every
  finished tile persists its verdicts (:class:`TileVerdictStore`) and
  progress (:class:`~repro.engine.checkpoint.ScanCursor`).  Both replay
  by the same rule: a tile whose current content digest matches its
  stored one is **replayed bit-identically** from disk, never
  re-scored.  A killed scan resumed against its own state dir and a
  fresh scan after a localized layout edit are therefore the same
  cheap operation — only changed (or unfinished) tiles pay for
  extraction and inference.

The scan emits ``scan_started`` / ``tile_scanned`` / ``scan_completed``
events (tile-granular progress) and returns a :class:`ScanReport`.
"""

from __future__ import annotations

import json
import time
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..analysis.concurrency import TrackedLock
from ..analysis.interleave import trace_point
from ..engine.checkpoint import ScanCursor
from ..engine.events import EventBus
from ..layout.layout import Layout
from ..layout.tiles import Tile, TileGrid
from .config import DataPlaneConfig
from .extract import BatchFeatureExtractor

__all__ = [
    "ScanReport",
    "ShardScheduler",
    "StreamConfig",
    "StreamScanner",
    "TileVerdictStore",
    "model_score_fn",
    "scan_layout",
]

#: ``score_fn`` contract: ``(N, C, H, W)`` float64 tensors in, ``(N,)``
#: hotspot probabilities out
ScoreFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of one streaming scan.

    Parameters
    ----------
    tile_clips:
        Tile edge length in clip windows (see
        :class:`~repro.layout.tiles.TileGrid`).
    shards:
        Work-queue/worker count of the :class:`ShardScheduler`.  ``1``
        (default) scans tiles in lattice order on the calling thread's
        schedule — fully deterministic event order.
    drop_empty:
        Skip windows with no geometry (their lattice index is never
        reused, so verdict indices are stable either way).
    state_dir:
        Directory for the verdict store + scan cursor; ``None``
        disables persistence (and with it resume/incremental replay).
    incremental:
        Replay tiles whose stored digest matches the current geometry.
        ``False`` forces a full re-score even with state present.
    cursor_every:
        Persist the cursor every this many completed tiles (1 = after
        every tile; larger values trade re-scan work after a crash for
        fewer small writes).
    threshold:
        Calibrated-probability cutoff above which a clip is flagged
        hotspot (the paper detects at 0.5).
    """

    tile_clips: int = 8
    shards: int = 1
    drop_empty: bool = True
    state_dir: str | None = None
    incremental: bool = True
    cursor_every: int = 1
    threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.tile_clips <= 0:
            raise ValueError(
                f"tile_clips must be positive, got {self.tile_clips}"
            )
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.cursor_every <= 0:
            raise ValueError(
                f"cursor_every must be positive, got {self.cursor_every}"
            )
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"threshold must be in (0, 1), got {self.threshold}"
            )


# ----------------------------------------------------------------------
# work-stealing shard scheduler
# ----------------------------------------------------------------------
class ShardScheduler:
    """Per-shard deques drained by worker threads, with work stealing.

    Items are dealt round-robin onto ``shards`` queues.  Each worker
    pops from the *front* of its own queue and, when empty, steals from
    the *back* of the richest other queue — the classic deque
    discipline, so owners and thieves rarely contend on the same end.
    ``on_result`` calls are serialized (one at a time, in completion
    order), which is what lets callers flush cursors and aggregate into
    plain lists from inside the callback.  The queue lock is a
    :class:`~repro.analysis.concurrency.TrackedLock`, so any lock-order
    inversion a callback introduces is reported under ``REPRO_CHECK``.

    The first exception raised by ``work`` or ``on_result`` stops the
    scheduler and is re-raised from :meth:`run`; items already
    completed stay completed (their ``on_result`` ran).
    """

    def __init__(self, shards: int) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        self.shards = shards

    def run(
        self,
        items: Iterable[Any],
        work: Callable[[Any], Any],
        on_result: Callable[[Any, Any], None] | None = None,
    ) -> dict:
        """Process every item; returns ``{"steals", "per_shard"}``."""
        queues: list[deque] = [deque() for _ in range(self.shards)]
        for i, item in enumerate(items):
            queues[i % self.shards].append(item)

        lock = TrackedLock("shard-scheduler")
        stop = threading.Event()
        errors: list[BaseException] = []
        stats = {"steals": 0, "per_shard": [0] * self.shards}
        _EMPTY = object()

        def take(me: int) -> tuple[Any, bool]:
            with lock:
                if queues[me]:
                    return queues[me].popleft(), False
                victim = None
                richest = 0
                for i, queue in enumerate(queues):
                    if i != me and len(queue) > richest:
                        richest = len(queue)
                        victim = queue
                if victim is not None:
                    return victim.pop(), True
            return _EMPTY, False

        def worker(me: int) -> None:
            while not stop.is_set():
                item, stolen = take(me)
                if item is _EMPTY:
                    return
                trace_point("scheduler.item.taken")
                try:
                    result = work(item)
                    with lock:
                        stats["per_shard"][me] += 1  # type: ignore[index]
                        if stolen:
                            stats["steals"] += 1  # type: ignore[operator]
                        if on_result is not None:
                            on_result(item, result)
                        trace_point("scheduler.item.done")
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    with lock:
                        errors.append(exc)
                    stop.set()
                    return

        if self.shards == 1:
            # single shard: run inline, no thread hop, deterministic
            worker(0)
        else:
            threads = [
                threading.Thread(
                    target=worker, args=(i,), name=f"scan-shard-{i}"
                )
                for i in range(self.shards)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        return stats


# ----------------------------------------------------------------------
# per-tile verdict persistence
# ----------------------------------------------------------------------
class TileVerdictStore:
    """One JSON file per completed tile under ``root``.

    Each entry holds the tile's content ``digest`` plus the parallel
    ``indices`` / ``scores`` / ``verdicts`` lists of its clips.  Floats
    survive the JSON round trip bit-identically (``repr`` of a float64
    is exact), which is what makes replayed tiles indistinguishable
    from re-scored ones.  Writes are atomic (``*.tmp`` +
    ``os.replace``); unreadable or schema-less entries load as ``None``
    and simply force a re-score.
    """

    _FIELDS = ("digest", "indices", "scores", "verdicts")

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"tile-{key}.json"

    def load(self, key: str) -> dict | None:
        try:
            payload = json.loads(self.path(key).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or any(
            name not in payload for name in self._FIELDS
        ):
            return None
        if not (
            len(payload["indices"])
            == len(payload["scores"])
            == len(payload["verdicts"])
        ):
            return None
        return payload

    def save(
        self,
        key: str,
        digest: str,
        indices: Sequence[int],
        scores: Sequence[float],
        verdicts: Sequence[int],
    ) -> Path:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "digest": digest,
                    "indices": [int(i) for i in indices],
                    "scores": [float(s) for s in scores],
                    "verdicts": [int(v) for v in verdicts],
                }
            )
        )
        tmp.replace(path)
        return path

    def keys(self) -> list[str]:
        """Keys of every stored tile (sorted)."""
        return sorted(
            path.stem[len("tile-"):]
            for path in self.root.glob("tile-*.json")
        )


# ----------------------------------------------------------------------
# scan report
# ----------------------------------------------------------------------
@dataclass
class ScanReport:
    """Outcome of one :meth:`StreamScanner.scan`."""

    layout: str
    n_tiles: int
    n_windows: int
    n_clips: int
    n_hotspots: int
    replayed_tiles: int
    rescored_tiles: int
    replayed_clips: int
    rescored_clips: int
    steals: int
    scan_seconds: float
    #: flagged clips, ascending clip index; each entry carries
    #: ``index``, ``window`` (absolute nm, ``[x0, y0, x1, y1]``) and
    #: ``score``
    hotspots: list[dict] = field(default_factory=list)
    #: tile key -> content digest of the scanned chip
    manifest: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "layout": self.layout,
            "n_tiles": self.n_tiles,
            "n_windows": self.n_windows,
            "n_clips": self.n_clips,
            "n_hotspots": self.n_hotspots,
            "replayed_tiles": self.replayed_tiles,
            "rescored_tiles": self.rescored_tiles,
            "replayed_clips": self.replayed_clips,
            "rescored_clips": self.rescored_clips,
            "steals": self.steals,
            "scan_seconds": self.scan_seconds,
            "hotspots": self.hotspots,
            "manifest": self.manifest,
        }


@dataclass
class _TileResult:
    tile: Tile
    digest: str
    indices: list[int]
    scores: list[float]
    verdicts: list[int]
    replayed: bool
    seconds: float


# ----------------------------------------------------------------------
# the scanner
# ----------------------------------------------------------------------
class StreamScanner:
    """Streaming hotspot scan of full-chip layouts.

    Parameters
    ----------
    grid:
        The tiled clip-window lattice to scan.
    plane:
        Cache-aware batch extractor; its :class:`DataPlaneConfig`
        decides chunking and process-level parallelism of the compute
        step.
    score_fn:
        ``(N, C, H, W)`` tensors → ``(N,)`` hotspot probabilities
        (build one from a trained classifier with
        :func:`model_score_fn`).  May be ``None`` when ``labeler`` is
        given — verdicts then come from lithography alone.
    config:
        Streaming knobs (:class:`StreamConfig`).
    bus:
        Optional event bus for scan progress events.
    labeler:
        Optional :class:`~repro.litho.labeler.LithoLabeler`; when
        present, tile verdicts come from simulation (``label_batch``
        fans out over the data-plane pool) instead of thresholded
        scores.  Access is serialized so its query meter stays exact.
    """

    def __init__(
        self,
        grid: TileGrid,
        plane: BatchFeatureExtractor,
        score_fn: ScoreFn | None,
        config: StreamConfig | None = None,
        bus: EventBus | None = None,
        labeler: Any | None = None,
    ) -> None:
        if score_fn is None and labeler is None:
            raise ValueError("need a score_fn, a labeler, or both")
        self.grid = grid
        self.plane = plane
        self.score_fn = score_fn
        self.config = config if config is not None else StreamConfig()
        self.bus = bus
        self.labeler = labeler
        #: serializes feature encoding / inference / litho labeling —
        #: scoring batches out of order would scramble the litho query
        #: meter; parallelism of the compute step lives in the plane's
        #: own chunk pool.  Tracked, so holding it across a cache/bus
        #: acquisition keeps the lock-order graph observable.
        self._compute_lock = TrackedLock("scanner-compute")

    # ------------------------------------------------------------------
    def _score_tile(self, clips: list) -> tuple[list[float], list[int]]:
        """Scores + verdicts of one tile's clips (compute-serialized)."""
        dp: DataPlaneConfig = self.plane.config
        with self._compute_lock:
            if self.score_fn is not None:
                tensors = self.plane.encode_batch(clips)
                scores_arr = np.asarray(self.score_fn(tensors), dtype=float)
                if scores_arr.shape != (len(clips),):
                    raise ValueError(
                        f"score_fn returned shape {scores_arr.shape}, "
                        f"expected ({len(clips)},)"
                    )
                scores = [float(s) for s in scores_arr]
            else:
                scores = []
            if self.labeler is not None:
                verdicts = [
                    int(v)
                    for v in self.labeler.label_batch(
                        clips,
                        chunk_size=dp.chunk_size,
                        workers=dp.workers,
                        executor=dp.executor,
                        timeout=dp.task_timeout,
                    )
                ]
            else:
                verdicts = [
                    int(s >= self.config.threshold) for s in scores
                ]
        if not scores:
            scores = [float(v) for v in verdicts]
        return scores, verdicts

    def _scan_tile(
        self,
        layout: Layout,
        tile: Tile,
        cursor: ScanCursor | None,
        store: TileVerdictStore | None,
    ) -> _TileResult:
        started = time.perf_counter()
        clips = list(
            self.grid.iter_clips(layout, tile, self.config.drop_empty)
        )
        digest = TileGrid.digest_clips(clips)

        if (
            self.config.incremental
            and cursor is not None
            and store is not None
            and cursor.is_done(tile.key, digest)
        ):
            stored = store.load(tile.key)
            if stored is not None and stored["digest"] == digest:
                return _TileResult(
                    tile=tile,
                    digest=digest,
                    indices=[int(i) for i in stored["indices"]],
                    scores=[float(s) for s in stored["scores"]],
                    verdicts=[int(v) for v in stored["verdicts"]],
                    replayed=True,
                    seconds=time.perf_counter() - started,
                )

        indices = [clip.index for clip in clips]
        if clips:
            scores, verdicts = self._score_tile(clips)
        else:
            scores, verdicts = [], []
        if store is not None:
            store.save(tile.key, digest, indices, scores, verdicts)
        return _TileResult(
            tile=tile,
            digest=digest,
            indices=indices,
            scores=scores,
            verdicts=verdicts,
            replayed=False,
            seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def scan(self, layout: Layout) -> ScanReport:
        """Scan ``layout`` tile by tile; returns the aggregate report."""
        cfg = self.config
        grid = self.grid
        scan_start = time.perf_counter()

        cursor: ScanCursor | None = None
        store: TileVerdictStore | None = None
        if cfg.state_dir is not None:
            state = Path(cfg.state_dir)
            store = TileVerdictStore(state / "tiles")
            cursor = ScanCursor.load(
                state / "cursor.json", grid.fingerprint()
            )
            if not cfg.incremental:
                cursor.done = {}

        tiles = grid.tiles()
        if self.bus is not None:
            self.bus.emit(
                "scan_started",
                layout=layout.name,
                n_tiles=len(tiles),
                n_windows=grid.n_windows,
                tile_clips=cfg.tile_clips,
                shards=cfg.shards,
                incremental=bool(cfg.incremental and cfg.state_dir),
            )

        results: list[_TileResult] = []
        unsaved = 0

        def on_result(tile: Tile, result: _TileResult) -> None:
            # scheduler-serialized: cursor flushes and the results list
            # are safe here and nowhere else off the main thread (the
            # bus serializes its own dispatch)
            nonlocal unsaved
            results.append(result)
            if cursor is not None:
                cursor.mark(tile.key, result.digest)
                unsaved += 1
                if unsaved >= cfg.cursor_every:
                    cursor.save()
                    unsaved = 0
            if self.bus is not None:
                self.bus.emit(
                    "tile_scanned",
                    tile=tile.key,
                    n_clips=len(result.indices),
                    n_hotspots=int(sum(result.verdicts)),
                    replayed=result.replayed,
                    tiles_done=len(results),
                    n_tiles=len(tiles),
                    tile_seconds=result.seconds,
                )

        scheduler = ShardScheduler(cfg.shards)
        stats = scheduler.run(
            tiles,
            lambda tile: self._scan_tile(layout, tile, cursor, store),
            on_result,
        )
        if cursor is not None:
            cursor.save()

        # aggregate in lattice order regardless of completion order
        results.sort(key=lambda r: (r.tile.ty, r.tile.tx))
        hotspots: list[dict] = []
        for result in results:
            for index, score, verdict in zip(
                result.indices, result.scores, result.verdicts
            ):
                if verdict:
                    row, col = divmod(index, grid.n_cols)
                    hotspots.append(
                        {
                            "index": index,
                            "window": list(
                                grid.window(row, col).as_tuple()
                            ),
                            "score": score,
                        }
                    )
        hotspots.sort(key=lambda h: h["index"])
        manifest = {r.tile.key: r.digest for r in results}
        if cfg.state_dir is not None:
            manifest_path = Path(cfg.state_dir) / "manifest.json"
            tmp = manifest_path.with_name(manifest_path.name + ".tmp")
            tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
            tmp.replace(manifest_path)

        replayed = [r for r in results if r.replayed]
        rescored = [r for r in results if not r.replayed]
        report = ScanReport(
            layout=layout.name,
            n_tiles=len(tiles),
            n_windows=grid.n_windows,
            n_clips=sum(len(r.indices) for r in results),
            n_hotspots=len(hotspots),
            replayed_tiles=len(replayed),
            rescored_tiles=len(rescored),
            replayed_clips=sum(len(r.indices) for r in replayed),
            rescored_clips=sum(len(r.indices) for r in rescored),
            steals=int(stats["steals"]),  # type: ignore[arg-type]
            scan_seconds=time.perf_counter() - scan_start,
            hotspots=hotspots,
            manifest=manifest,
        )
        if self.bus is not None:
            self.bus.emit(
                "scan_completed",
                n_tiles=report.n_tiles,
                n_clips=report.n_clips,
                n_hotspots=report.n_hotspots,
                replayed_tiles=report.replayed_tiles,
                rescored_tiles=report.rescored_tiles,
                replayed_clips=report.replayed_clips,
                rescored_clips=report.rescored_clips,
                steals=report.steals,
                scan_seconds=report.scan_seconds,
            )
        return report


# ----------------------------------------------------------------------
# conveniences
# ----------------------------------------------------------------------
def model_score_fn(classifier: Any, temperature: Any = None) -> ScoreFn:
    """Hotspot-probability ``score_fn`` of a trained classifier.

    With a fitted ``temperature``
    (:class:`~repro.calibration.temperature.TemperatureScaler`), scores
    are the calibrated probabilities the paper detects on; without one,
    the raw softmax of Eq. (4).
    """
    from ..calibration.temperature import scaled_softmax

    def score(tensors: np.ndarray) -> np.ndarray:
        logits = classifier.predict_logits(tensors)
        if temperature is not None and temperature.temperature_ is not None:
            probs = temperature.transform(logits)
        else:
            probs = scaled_softmax(logits, 1.0)
        return np.asarray(probs[:, 1])

    return score


def scan_layout(
    layout: Layout,
    clip_size: int,
    core_margin: int,
    classifier: Any = None,
    temperature: Any = None,
    extractor: Any = None,
    dataplane: DataPlaneConfig | None = None,
    stream: StreamConfig | None = None,
    bus: EventBus | None = None,
    labeler: Any | None = None,
    score_fn: ScoreFn | None = None,
) -> ScanReport:
    """One-call streaming scan of ``layout``.

    Builds the :class:`~repro.layout.tiles.TileGrid`, the cache-aware
    data plane and the :class:`StreamScanner` from the given configs,
    scores with ``classifier`` (+ optional fitted ``temperature``)
    unless an explicit ``score_fn`` or ``labeler`` is supplied, and
    returns the :class:`ScanReport`.
    """
    from ..features.pipeline import FeatureExtractor

    stream = stream if stream is not None else StreamConfig()
    grid = TileGrid.for_layout(
        layout, clip_size, core_margin, tile_clips=stream.tile_clips
    )
    plane = BatchFeatureExtractor(
        extractor if extractor is not None else FeatureExtractor(),
        config=dataplane,
        bus=bus,
    )
    if score_fn is None and classifier is not None:
        score_fn = model_score_fn(classifier, temperature)
    scanner = StreamScanner(
        grid, plane, score_fn, config=stream, bus=bus, labeler=labeler
    )
    return scanner.scan(layout)
