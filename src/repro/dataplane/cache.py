"""Content-addressed feature cache with memory and disk tiers.

Keys are content addresses: clip geometry hash + extractor parameter
signature + feature kind (see
:meth:`repro.layout.clip.Clip.content_key` and
:attr:`repro.features.pipeline.FeatureExtractor.params_key`).  Equal
geometry therefore hits regardless of which ``Clip`` instance, AL
iteration, or benchmark sweep asks.

Two tiers:

* **memory** — an LRU of the most recent ``memory_items`` arrays; hits
  are free.
* **disk** — optional ``.npz`` files under ``disk_dir``; survives the
  process, so repeated bench runs and CLI invocations skip re-encoding
  entirely.  Disk hits are promoted into the memory tier.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid importing the engine at runtime
    from ..engine.events import EventBus

__all__ = ["CacheStats", "FeatureCache", "feature_key"]


def feature_key(content_key: str, params_key: str, kind: str) -> str:
    """Full cache key of one feature array."""
    return f"{content_key}-{params_key}-{kind}"


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`FeatureCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: corrupt disk entries detected and quarantined (each also counts
    #: as a miss)
    corrupt: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }


@dataclass
class FeatureCache:
    """Two-tier (LRU memory + ``.npz`` disk) array cache.

    ``memory_items == 0`` disables the memory tier; ``disk_dir is None``
    disables the disk tier.  A fully disabled cache is valid and simply
    misses everything.
    """

    memory_items: int = 1024
    disk_dir: str | os.PathLike | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    #: optional event bus receiving one ``cache_corrupt`` event per
    #: quarantined disk entry
    bus: "EventBus | None" = None

    def __post_init__(self) -> None:
        if self.memory_items < 0:
            raise ValueError(
                f"memory_items must be >= 0, got {self.memory_items}"
            )
        self._memory: OrderedDict[str, np.ndarray] = OrderedDict()
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path:
        return Path(self.disk_dir) / f"{key}.npz"

    def get(self, key: str) -> np.ndarray | None:
        """The cached array for ``key``, or ``None`` on a miss.

        Returned arrays are the cache's own storage — treat them as
        read-only (batch assembly copies them into the output anyway).
        """
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return self._memory[key]
        if self.disk_dir is not None:
            path = self._disk_path(key)
            if path.exists():
                try:
                    with np.load(path, allow_pickle=False) as archive:
                        array = archive["data"]
                except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                    # a torn write is a miss — quarantine the file so it
                    # cannot fail again on every future read
                    self._quarantine(key, path)
                    self.stats.misses += 1
                    return None
                self.stats.disk_hits += 1
                self._store_memory(key, array)
                return array
        self.stats.misses += 1
        return None

    def put(self, key: str, array: np.ndarray) -> None:
        """Insert ``array`` into every enabled tier."""
        array = np.asarray(array)
        self.stats.puts += 1
        self._store_memory(key, array)
        if self.disk_dir is not None:
            path = self._disk_path(key)
            if not path.exists():
                # atomic publish: concurrent writers race benignly
                fd, tmp = tempfile.mkstemp(
                    dir=str(self.disk_dir), suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        np.savez_compressed(handle, data=array)
                    os.replace(tmp, path)
                except OSError:
                    if os.path.exists(tmp):
                        os.unlink(tmp)

    def _quarantine(self, key: str, path: Path) -> None:
        """Delete a corrupt disk entry and account for it."""
        self.stats.corrupt += 1
        try:
            path.unlink()
        except OSError:
            pass  # concurrent repair/removal; the count still stands
        if self.bus is not None:
            self.bus.emit("cache_corrupt", key=key, path=str(path))

    def _store_memory(self, key: str, array: np.ndarray) -> None:
        if self.memory_items == 0:
            return
        if key in self._memory:
            self._memory.move_to_end(key)
            return
        self._memory[key] = array
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the memory tier and reset counters (disk is kept)."""
        self._memory.clear()
        self.stats = CacheStats()
