"""Content-addressed feature cache with memory and disk tiers.

Keys are content addresses: clip geometry hash + extractor parameter
signature + feature kind (see
:meth:`repro.layout.clip.Clip.content_key` and
:attr:`repro.features.pipeline.FeatureExtractor.params_key`).  Equal
geometry therefore hits regardless of which ``Clip`` instance, AL
iteration, or benchmark sweep asks.

Two tiers:

* **memory** — an LRU of the most recent ``memory_items`` arrays; hits
  are free.
* **disk** — optional ``.npz`` files under ``disk_dir``; survives the
  process, so repeated bench runs and CLI invocations skip re-encoding
  entirely.  Disk hits are promoted into the memory tier.

The disk tier scales to full-chip streaming scans:

* **sharding** — with ``disk_shards > 0`` entries spread over
  ``shard-XX/`` subdirectories keyed by the content-hash prefix of the
  key, so millions of entries never pile into one directory (flat
  legacy entries remain readable).
* **byte budget** — ``max_disk_bytes`` bounds the tier; per-entry sizes
  are tracked in an LRU index and the oldest entries are evicted (one
  ``cache_evicted`` event each) when an insert would overflow the
  budget.  :meth:`compact` reclaims leftover temp files and re-applies
  the budget offline.

Thread safety: ``ShardScheduler`` threads and pool workers call
``get``/``put`` concurrently, so every access to the LRU structures
happens under one re-entrant cache lock (a
:class:`~repro.analysis.concurrency.TrackedRLock`, so lock-order
inversions against the event bus are detected under
``REPRO_CHECK``).  The ``_memory``/``_disk_index`` ``OrderedDict``\\ s
are declared :func:`~repro.analysis.concurrency.guarded_by` the lock —
an unlocked access raises in strict mode and is flagged statically by
reprolint R007.  Array I/O deliberately stays inside the critical
section: eviction accounting must observe the same index state the
filesystem operation was decided on.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..analysis.concurrency import TrackedRLock, guarded_by
from ..analysis.interleave import trace_point

if TYPE_CHECKING:  # avoid importing the engine at runtime
    from ..engine.events import EventBus

__all__ = ["CacheStats", "FeatureCache", "feature_key"]


def feature_key(content_key: str, params_key: str, kind: str) -> str:
    """Full cache key of one feature array."""
    return f"{content_key}-{params_key}-{kind}"


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`FeatureCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: corrupt disk entries detected and quarantined (each also counts
    #: as a miss)
    corrupt: int = 0
    #: disk-tier entries evicted to honour ``max_disk_bytes``
    disk_evictions: int = 0
    #: bytes reclaimed by disk-tier eviction (cumulative)
    evicted_bytes: int = 0
    #: bytes currently resident in the disk tier (kept in step with the
    #: cache's per-entry size index)
    disk_bytes: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "disk_evictions": self.disk_evictions,
            "evicted_bytes": self.evicted_bytes,
            "disk_bytes": self.disk_bytes,
        }


@dataclass
class FeatureCache:
    """Two-tier (LRU memory + ``.npz`` disk) array cache.

    ``memory_items == 0`` disables the memory tier; ``disk_dir is None``
    disables the disk tier.  A fully disabled cache is valid and simply
    misses everything.  ``disk_shards > 0`` spreads disk entries over
    that many subdirectories (content-hash-prefix keyed);
    ``max_disk_bytes`` bounds the disk tier with LRU eviction.

    All public methods are thread-safe; see the module docstring for
    the locking discipline.
    """

    memory_items: int = 1024
    disk_dir: str | os.PathLike | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    #: optional event bus receiving one ``cache_corrupt`` event per
    #: quarantined disk entry and one ``cache_evicted`` event per
    #: budget-evicted entry
    bus: "EventBus | None" = None
    #: shard subdirectories of the disk tier (0 = flat legacy layout)
    disk_shards: int = 0
    #: byte budget of the disk tier (None = unbounded)
    max_disk_bytes: int | None = None

    # class-level (not dataclass fields): the LRU structures and the
    # per-tenant counters may only be touched while self._lock is held
    _memory = guarded_by("_lock")
    _disk_index = guarded_by("_lock")
    _tenant = guarded_by("_lock")

    def __post_init__(self) -> None:
        if self.memory_items < 0:
            raise ValueError(
                f"memory_items must be >= 0, got {self.memory_items}"
            )
        if self.disk_shards < 0:
            raise ValueError(
                f"disk_shards must be >= 0, got {self.disk_shards}"
            )
        if self.max_disk_bytes is not None and self.max_disk_bytes <= 0:
            raise ValueError(
                "max_disk_bytes must be positive or None, got "
                f"{self.max_disk_bytes}"
            )
        self._lock = TrackedRLock("feature-cache")
        with self._lock:
            self._memory = OrderedDict()  #: guarded_by: _lock
            #: key -> on-disk bytes, LRU-ordered (oldest first); the
            #: single source of truth for the byte budget
            self._disk_index = OrderedDict()  #: guarded_by: _lock
            #: tenant name -> hit/miss/put counters; tenants are the
            #: serving daemon's model versions sharing one cache
            self._tenant = {}  #: guarded_by: _lock
            if self.disk_dir is not None:
                self.disk_dir = Path(self.disk_dir)
                self.disk_dir.mkdir(parents=True, exist_ok=True)
                self._scan_disk()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _shard_of(self, key: str) -> int:
        """Shard number from the content-hash prefix of ``key`` (keys
        start with the hex clip digest; non-hex keys fall back to a
        CRC so arbitrary keys still shard deterministically)."""
        try:
            return int(key[:8], 16) % self.disk_shards
        except ValueError:
            return zlib.crc32(key.encode()) % self.disk_shards

    def _disk_path(self, key: str) -> Path:
        root = Path(self.disk_dir)  # type: ignore[arg-type]
        if self.disk_shards > 0:
            root = root / f"shard-{self._shard_of(key):02x}"
        return root / f"{key}.npz"

    def _lookup_path(self, key: str) -> Path | None:
        """The existing on-disk file of ``key``, honouring both sharded
        and flat legacy placement; ``None`` when absent."""
        path = self._disk_path(key)
        if path.exists():
            return path
        if self.disk_shards > 0:
            flat = Path(self.disk_dir) / f"{key}.npz"  # type: ignore[arg-type]
            if flat.exists():
                return flat
        return None

    def _scan_disk(self) -> None:  #: requires: _lock
        """Build the size/LRU index of pre-existing disk entries
        (oldest modification first, so eviction drops stale runs)."""
        root = Path(self.disk_dir)  # type: ignore[arg-type]
        entries = []
        for path in root.glob("*.npz"):
            entries.append(path)
        for path in root.glob("shard-*/*.npz"):
            entries.append(path)
        records = []
        for path in entries:
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted by a concurrent process mid-scan
            records.append((stat.st_mtime_ns, path.stem, stat.st_size))
        records.sort()
        self._disk_index.clear()
        for _, key, size in records:
            self._disk_index[key] = size
        self.stats.disk_bytes = sum(self._disk_index.values())

    @property
    def disk_bytes(self) -> int:
        """Bytes currently accounted to the disk tier."""
        return self.stats.disk_bytes

    def get(
        self, key: str, tenant: str | None = None
    ) -> np.ndarray | None:
        """The cached array for ``key``, or ``None`` on a miss.

        Returned arrays are the cache's own storage — treat them as
        read-only (batch assembly copies them into the output anyway).
        ``tenant`` additionally attributes the hit/miss to a named
        cache tenant (see :meth:`tenant_stats`).
        """
        with self._lock:
            if key in self._memory:
                trace_point("cache.get.hit")
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                self._tenant_note(tenant, "memory_hits")
                return self._memory[key]
            if self.disk_dir is not None:
                path = self._lookup_path(key)
                if path is not None:
                    try:
                        with np.load(path, allow_pickle=False) as archive:
                            array = archive["data"]
                    except (OSError, ValueError, KeyError,
                            zipfile.BadZipFile):
                        # a torn write is a miss — quarantine the file
                        # so it cannot fail again on every future read
                        self._quarantine(key, path)
                        self.stats.misses += 1
                        self._tenant_note(tenant, "misses")
                        return None
                    self.stats.disk_hits += 1
                    self._tenant_note(tenant, "disk_hits")
                    if key in self._disk_index:
                        self._disk_index.move_to_end(key)
                    self._store_memory(key, array)
                    return array
            self.stats.misses += 1
            self._tenant_note(tenant, "misses")
            trace_point("cache.get.miss")
            return None

    def put(
        self, key: str, array: np.ndarray, tenant: str | None = None
    ) -> None:
        """Insert ``array`` into every enabled tier."""
        array = np.asarray(array)
        with self._lock:
            self.stats.puts += 1
            self._tenant_note(tenant, "puts")
            self._store_memory(key, array)
            if self.disk_dir is not None:
                path = self._disk_path(key)
                if self._lookup_path(key) is None:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    # atomic publish: concurrent writers race benignly
                    fd, tmp = tempfile.mkstemp(
                        dir=str(path.parent), suffix=".tmp"
                    )
                    try:
                        with os.fdopen(fd, "wb") as handle:
                            np.savez_compressed(handle, data=array)
                        os.replace(tmp, path)
                    except OSError:
                        if os.path.exists(tmp):
                            os.unlink(tmp)
                        return
                    self._account_disk_entry(key, path)
                    self._evict_disk()
            trace_point("cache.put.done")

    def _account_disk_entry(self, key: str, path: Path) -> None:  #: requires: _lock
        try:
            size = path.stat().st_size
        except OSError:
            return  # concurrently evicted/removed; nothing to account
        if key in self._disk_index:
            self.stats.disk_bytes -= self._disk_index[key]
        self._disk_index[key] = size
        self._disk_index.move_to_end(key)
        self.stats.disk_bytes += size

    def _evict_disk(self) -> None:  #: requires: _lock
        """Drop least-recently-used disk entries until the tier fits
        the byte budget (one ``cache_evicted`` event per entry)."""
        if self.max_disk_bytes is None:
            return
        while (
            self.stats.disk_bytes > self.max_disk_bytes
            and len(self._disk_index) > 1
        ):
            key, size = self._disk_index.popitem(last=False)
            path = self._lookup_path(key)
            if path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass  # concurrent removal; the accounting stands
            self.stats.disk_bytes -= size
            self.stats.disk_evictions += 1
            self.stats.evicted_bytes += size
            if self.bus is not None:
                self.bus.emit(
                    "cache_evicted",
                    key=key,
                    bytes=size,
                    disk_bytes=self.stats.disk_bytes,
                    max_disk_bytes=self.max_disk_bytes,
                )

    def compact(self, max_bytes: int | None = None) -> dict:
        """Offline maintenance of the disk tier.

        Removes leftover ``*.tmp`` files from interrupted writes,
        rebuilds the size/LRU index from disk, and re-applies the byte
        budget (``max_bytes`` overrides ``max_disk_bytes`` for this
        pass).  Returns a report dict; a no-disk cache compacts to an
        empty report.  Temp files that cannot be removed are counted in
        ``failed_tmp`` (one ``cache_tmp_failed`` event each) instead of
        vanishing silently — a persistently failing unlink means the
        tier's directory needs operator attention.
        """
        report = {
            "removed_tmp": 0,
            "failed_tmp": 0,
            "disk_evictions_before": self.stats.disk_evictions,
            "disk_bytes": 0,
            "entries": 0,
        }
        if self.disk_dir is None:
            return report
        root = Path(self.disk_dir)
        for tmp in list(root.glob("*.tmp")) + list(root.glob("shard-*/*.tmp")):
            try:
                tmp.unlink()
                report["removed_tmp"] += 1
            except OSError as exc:
                report["failed_tmp"] += 1
                if self.bus is not None:
                    self.bus.emit(
                        "cache_tmp_failed", path=str(tmp), error=str(exc)
                    )
        with self._lock:
            self._scan_disk()
            budget = (
                max_bytes if max_bytes is not None else self.max_disk_bytes
            )
            if budget is not None:
                original = self.max_disk_bytes
                self.max_disk_bytes = budget
                try:
                    self._evict_disk()
                finally:
                    self.max_disk_bytes = original
            report["disk_bytes"] = self.stats.disk_bytes
            report["entries"] = len(self._disk_index)
        return report

    def _quarantine(self, key: str, path: Path) -> None:  #: requires: _lock
        """Delete a corrupt disk entry and account for it."""
        self.stats.corrupt += 1
        try:
            path.unlink()
        except OSError:
            pass  # concurrent repair/removal; the count still stands
        if key in self._disk_index:
            self.stats.disk_bytes -= self._disk_index.pop(key)
        if self.bus is not None:
            self.bus.emit("cache_corrupt", key=key, path=str(path))

    def _tenant_note(self, tenant: str | None, field: str) -> None:  #: requires: _lock
        """Attribute one counter bump to a named cache tenant."""
        if tenant is None:
            return
        counters = self._tenant.get(tenant)
        if counters is None:
            counters = {
                "memory_hits": 0, "disk_hits": 0, "misses": 0, "puts": 0,
            }
            self._tenant[tenant] = counters
        counters[field] += 1

    def tenant_stats(self) -> dict:
        """Per-tenant hit/miss/put counters (tenants that never tagged
        an access are absent).  The serving daemon keys tenants by model
        version, so one shared cache stays attributable per model."""
        with self._lock:
            return {
                tenant: dict(
                    counters,
                    hits=counters["memory_hits"] + counters["disk_hits"],
                )
                for tenant, counters in self._tenant.items()
            }

    def _store_memory(self, key: str, array: np.ndarray) -> None:  #: requires: _lock
        if self.memory_items == 0:
            return
        if key in self._memory:
            self._memory.move_to_end(key)
            return
        self._memory[key] = array
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the memory tier and reset counters (disk is kept)."""
        with self._lock:
            self._memory.clear()
            self._tenant = {}
            self.stats = CacheStats(
                disk_bytes=sum(self._disk_index.values())
            )
