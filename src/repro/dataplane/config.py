"""Configuration of the data plane (chunking, pooling, cache tiers)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DataPlaneConfig", "EXECUTORS", "PRECISIONS"]

#: supported ``concurrent.futures`` pool flavours
EXECUTORS = ("thread", "process")

#: supported feature-encoding precision modes (mirrors
#: ``repro.nn.runtime.PRECISION_MODES``; duplicated literally so this
#: config module stays importable without numpy)
PRECISIONS = ("exact", "fast")


@dataclass(frozen=True)
class DataPlaneConfig:
    """How clips are turned into features and labels.

    Parameters
    ----------
    chunk_size:
        Clips per extraction/labeling chunk.  Chunks are the unit of
        vectorization (one stacked DCT call per chunk) and of pool
        dispatch.
    workers:
        Pool width; ``0`` (the default) runs everything in-process with
        no executor at all — the safe single-process fallback.
    executor:
        ``"thread"`` or ``"process"`` — which ``concurrent.futures``
        pool to use when ``workers > 0``.  Thread pools are cheap and
        suit the NumPy/SciPy kernels (which release the GIL); process
        pools pay serialization but isolate heavier workloads.
    memory_cache_items:
        Capacity of the in-memory LRU tier of the feature cache
        (entries, not bytes); ``0`` disables the tier.
    disk_cache_dir:
        Directory of the on-disk ``.npz`` tier; ``None`` (default)
        disables it.
    disk_cache_shards:
        Shard subdirectories of the disk tier (0 = flat layout); see
        :class:`~repro.dataplane.cache.FeatureCache`.  Full-chip scans
        should shard so entry counts per directory stay bounded.
    max_disk_cache_bytes:
        Byte budget of the disk tier with LRU eviction (``None`` =
        unbounded, the legacy behaviour).
    task_timeout:
        Watchdog deadline in seconds for each pooled chunk; a chunk
        that does not answer in time is cancelled and re-run serially
        (see :func:`repro.dataplane.pool.map_chunks`).  ``None``
        (default) disables the watchdog.
    precision:
        Feature-encoding precision: ``"exact"`` (default) keeps the
        bit-exact float64 DCT kernel; ``"fast"`` computes the basis
        matmul in float32 (outputs upcast to float64, cache keys
        disambiguated — see ``FeatureExtractor.params_key``).
    """

    chunk_size: int = 64
    workers: int = 0
    executor: str = "thread"
    memory_cache_items: int = 1024
    disk_cache_dir: str | None = None
    disk_cache_shards: int = 0
    max_disk_cache_bytes: int | None = None
    task_timeout: float | None = None
    precision: str = "exact"

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.memory_cache_items < 0:
            raise ValueError(
                "memory_cache_items must be >= 0, got "
                f"{self.memory_cache_items}"
            )
        if self.disk_cache_shards < 0:
            raise ValueError(
                "disk_cache_shards must be >= 0, got "
                f"{self.disk_cache_shards}"
            )
        if self.max_disk_cache_bytes is not None and (
            self.max_disk_cache_bytes <= 0
        ):
            raise ValueError(
                "max_disk_cache_bytes must be positive or None, got "
                f"{self.max_disk_cache_bytes}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                "task_timeout must be positive or None, got "
                f"{self.task_timeout}"
            )
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, "
                f"got {self.precision!r}"
            )
