"""Chunked, cached, optionally parallel batch feature extraction.

:class:`BatchFeatureExtractor` is the data plane's front door for the
clip → tensor path.  It wraps a plain
:class:`~repro.features.pipeline.FeatureExtractor` and adds, without
changing a single output bit:

* **chunking** — clips are processed in fixed-size chunks, each encoded
  with one vectorized stacked-DCT call instead of a per-clip loop;
* **parallelism** — chunks optionally fan out over a
  ``concurrent.futures`` thread/process pool (``DataPlaneConfig.workers``);
* **content-addressed caching** — every tensor/flat is stored under
  geometry-hash + extractor-params keys in a two-tier
  :class:`~repro.dataplane.cache.FeatureCache`, so repeated AL
  iterations, baseline sweeps and bench runs never re-encode an
  identical clip;
* **deduplication** — identical clips inside one request are encoded
  once;
* **observability** — each request emits one ``features_extracted``
  event with hit/miss counts and wall time.

The tensors and flats of one clip share a raster, so requesting both
through :meth:`extract` costs one rasterization — the eager path paid
three (encode, then flat's encode + density).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from ..analysis.contracts import contract
from ..engine.events import EventBus
from ..features.pipeline import FeatureExtractor
from .cache import FeatureCache, feature_key
from .config import DataPlaneConfig
from .pool import imap_chunks

__all__ = ["BatchFeatureExtractor", "FeatureBatch"]


@dataclass
class FeatureBatch:
    """Model-ready arrays of one clip batch."""

    tensors: np.ndarray  # (N, C, H, W) DCT tensors
    flats: np.ndarray    # (N, D) DCT + density vectors


def _encode_chunk(
    clips: list, extractor: FeatureExtractor, want_flat: bool
) -> tuple[np.ndarray, np.ndarray | None]:
    """Encode one chunk (module-level so process pools can pickle it)."""
    rasters = extractor.raster_stack(clips)
    tensors = extractor.encode_rasters(rasters)
    flats = (
        extractor.flats_from_rasters(rasters, tensors) if want_flat else None
    )
    return tensors, flats


class BatchFeatureExtractor:
    """Cache-aware chunked extraction over a :class:`FeatureExtractor`.

    Parameters
    ----------
    extractor:
        The parameter-fixing eager extractor; its outputs define
        correctness (the batched paths are asserted bit-identical).
    config:
        Chunk size, pool width/flavour and cache-tier sizing.
    cache:
        Share an existing :class:`FeatureCache` across planes (e.g. one
        cache for a whole bench sweep); by default a private cache is
        built from ``config``.
    bus:
        Optional :class:`~repro.engine.events.EventBus` receiving one
        ``features_extracted`` event per request.
    """

    def __init__(
        self,
        extractor: FeatureExtractor,
        config: DataPlaneConfig | None = None,
        cache: FeatureCache | None = None,
        bus: EventBus | None = None,
    ) -> None:
        self.config = config if config is not None else DataPlaneConfig()
        # a non-default config precision overrides the extractor's mode
        # (cache keys follow via FeatureExtractor.params_key); the
        # default "exact" leaves an explicitly-built extractor alone
        if self.config.precision != "exact":
            extractor = extractor.with_precision(self.config.precision)
        self.extractor = extractor
        self.cache = (
            cache
            if cache is not None
            else FeatureCache(
                memory_items=self.config.memory_cache_items,
                disk_dir=self.config.disk_cache_dir,
                disk_shards=self.config.disk_cache_shards,
                max_disk_bytes=self.config.max_disk_cache_bytes,
                bus=bus,
            )
        )
        self.bus = bus
        #: optional cache-tenant tag: when set, every cache access of
        #: this plane is attributed to that tenant in the shared
        #: cache's per-tenant stats (the serving daemon sets it to the
        #: dispatched model version from its single dispatcher thread)
        self.tenant: str | None = None

    def _watchdog_fired(self, chunk_index: int) -> None:
        """A pooled extraction chunk hung past the deadline and was
        re-run serially; surface it as a guard event pair."""
        if self.bus is None:
            return
        self.bus.emit(
            "health_alert",
            sentinel="pool_watchdog",
            stage="extract",
            detail=(
                f"chunk {chunk_index} exceeded "
                f"{self.config.task_timeout}s deadline"
            ),
            chunk=chunk_index,
        )
        self.bus.emit(
            "recovery_applied",
            policy="serial_fallback",
            sentinel="pool_watchdog",
            stage="extract",
            chunk=chunk_index,
        )

    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> dict:
        """Lifetime hit/miss counters of the underlying cache."""
        return self.cache.stats.as_dict()

    @contract(returns="f8[N,C,H,W]")
    def encode_batch(self, clips) -> np.ndarray:
        """DCT tensors ``(N, C, H, W)`` — chunked, cached, bit-identical
        to ``FeatureExtractor.encode_batch``."""
        return self._gather(clips, want_flat=False).tensors

    @contract(returns="f8[N,D]")
    def flat_batch(self, clips) -> np.ndarray:
        """Flat vectors ``(N, D)`` — chunked, cached, bit-identical to
        ``FeatureExtractor.flat_batch``."""
        return self._gather(clips, want_flat=True).flats

    def extract(self, clips) -> FeatureBatch:
        """Tensors *and* flats from a single raster pass per clip."""
        return self._gather(clips, want_flat=True)

    def iter_extract(self, clips, want_flat: bool = True, batch_clips: int | None = None):
        """Stream ``(clips, FeatureBatch)`` pairs over any clip iterable.

        The full-chip streaming path: ``clips`` may be a lazy iterator
        (e.g. :meth:`repro.layout.tiles.TileGrid.iter_clips`) and is
        consumed in bounded batches of ``batch_clips`` (default
        ``chunk_size * max(workers, 1)``, so a pooled plane keeps every
        worker busy per batch) — at no point is the whole feature stack
        materialized.  Each yielded batch went through the same cached,
        deduped, optionally pooled path as :meth:`extract`, so per-clip
        outputs are bit-identical to an eager call; each batch emits its
        own ``features_extracted`` event.
        """
        if batch_clips is None:
            batch_clips = self.config.chunk_size * max(self.config.workers, 1)
        if batch_clips <= 0:
            raise ValueError(
                f"batch_clips must be positive, got {batch_clips}"
            )
        pending: list = []
        for clip in clips:
            pending.append(clip)
            if len(pending) >= batch_clips:
                yield pending, self._gather(pending, want_flat)
                pending = []
        if pending:
            yield pending, self._gather(pending, want_flat)

    # ------------------------------------------------------------------
    def _gather(self, clips, want_flat: bool) -> FeatureBatch:
        started = time.perf_counter()
        clips = list(clips)
        fx = self.extractor
        n = len(clips)
        tensors = np.zeros((n,) + fx.tensor_shape)
        flats = np.zeros((n, fx.flat_size))

        # cache lookup, deduplicating identical geometry within the batch
        params = fx.params_key
        keys = [clip.content_key() for clip in clips]
        pending: dict[str, int] = {}   # content key -> representative pos
        positions: dict[str, list[int]] = {}
        cache_hits = 0
        for pos, key in enumerate(keys):
            if key in positions:
                positions[key].append(pos)
                continue
            positions[key] = [pos]
            tensor = self.cache.get(
                feature_key(key, params, "tensor"), tenant=self.tenant
            )
            flat = (
                self.cache.get(
                    feature_key(key, params, "flat"), tenant=self.tenant
                )
                if want_flat
                else None
            )
            if tensor is not None and (not want_flat or flat is not None):
                tensors[pos] = tensor
                if want_flat:
                    flats[pos] = flat
                cache_hits += 1
            else:
                pending[key] = pos

        # encode the misses in chunks, optionally in parallel; the lazy
        # iterator commits each chunk to the cache as it completes, so a
        # mid-request failure keeps the chunks already paid for
        cfg = self.config
        miss_keys = list(pending)
        miss_clips = [clips[pending[key]] for key in miss_keys]
        chunk_results = imap_chunks(
            partial(_encode_chunk, extractor=fx, want_flat=want_flat),
            miss_clips,
            chunk_size=cfg.chunk_size,
            workers=cfg.workers,
            executor=cfg.executor,
            timeout=cfg.task_timeout,
            on_timeout=self._watchdog_fired,
        )
        cursor = 0
        n_chunks = 0
        for chunk_tensors, chunk_flats in chunk_results:
            n_chunks += 1
            for i in range(len(chunk_tensors)):
                key = miss_keys[cursor]
                pos = pending[key]
                tensors[pos] = chunk_tensors[i]
                self.cache.put(
                    feature_key(key, params, "tensor"), chunk_tensors[i],
                    tenant=self.tenant,
                )
                if want_flat:
                    flats[pos] = chunk_flats[i]
                    self.cache.put(
                        feature_key(key, params, "flat"), chunk_flats[i],
                        tenant=self.tenant,
                    )
                cursor += 1

        # replicate representatives onto duplicate positions
        for key, group in positions.items():
            for pos in group[1:]:
                tensors[pos] = tensors[group[0]]
                if want_flat:
                    flats[pos] = flats[group[0]]

        if self.bus is not None:
            self.bus.emit(
                "features_extracted",
                n_clips=n,
                cache_hits=cache_hits,
                cache_misses=len(pending),
                deduped=n - len(positions),
                chunks=n_chunks,
                chunk_size=cfg.chunk_size,
                workers=cfg.workers,
                kinds=["tensor", "flat"] if want_flat else ["tensor"],
                cache_stats=self.cache_stats,
                extract_seconds=time.perf_counter() - started,
            )
        return FeatureBatch(tensors=tensors, flats=flats)
