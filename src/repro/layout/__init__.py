"""Layout substrate (S2): rectilinear geometry, full-chip container,
clip extraction, rasterization and GLP text I/O."""

from .clip import Clip, extract_clip, extract_clip_grid
from .gds import load_gds, save_gds
from .geometry import Rect, bounding_box, merge_touching, total_area
from .glp import load_layout, save_layout
from .layout import Layout
from .polygon import RectilinearPolygon
from .raster import rasterize, rasterize_binary
from .tiles import Tile, TileGrid
from .transforms import (
    ORIENTATIONS,
    transform_clip,
    transform_rect,
    transform_rects,
)

__all__ = [
    "Rect",
    "bounding_box",
    "total_area",
    "merge_touching",
    "RectilinearPolygon",
    "Layout",
    "Clip",
    "extract_clip",
    "extract_clip_grid",
    "Tile",
    "TileGrid",
    "rasterize",
    "rasterize_binary",
    "save_layout",
    "load_layout",
    "save_gds",
    "load_gds",
    "ORIENTATIONS",
    "transform_rect",
    "transform_rects",
    "transform_clip",
]
