"""Rectilinear geometry primitives.

Layout coordinates are integer nanometres, matching GDS conventions: a
:class:`Rect` is a half-open box ``[x0, x1) x [y0, y1)`` so that abutting
rectangles tile without double-counting area.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rect", "bounding_box", "total_area", "merge_touching"]


@dataclass(frozen=True, order=True)
class Rect:
    """Axis-aligned rectangle with integer nm coordinates, half-open."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate rect {self!r}")

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def shifted(self, dx: int, dy: int) -> "Rect":
        """A copy translated by (dx, dy)."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def intersects(self, other: "Rect") -> bool:
        """True when the interiors overlap (touching edges do not count)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap region, or ``None`` when interiors are disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def contains_point(self, x: float, y: float) -> bool:
        """Half-open containment test."""
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def expanded(self, margin: int) -> "Rect":
        """Grow (or shrink, for negative margin) by ``margin`` on all sides."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.x0, self.y0, self.x1, self.y1)


def bounding_box(rects) -> Rect:
    """Smallest rect covering all ``rects``; raises on an empty input."""
    rects = list(rects)
    if not rects:
        raise ValueError("bounding_box of empty collection")
    return Rect(
        min(r.x0 for r in rects),
        min(r.y0 for r in rects),
        max(r.x1 for r in rects),
        max(r.y1 for r in rects),
    )


def total_area(rects) -> int:
    """Union area of possibly overlapping rects (sweep over y-slabs).

    Exact for integer coordinates; quadratic in the number of rects, so
    intended for per-clip geometry counts, not full chips.
    """
    rects = list(rects)
    if not rects:
        return 0
    ys = sorted({r.y0 for r in rects} | {r.y1 for r in rects})
    area = 0
    for y_lo, y_hi in zip(ys, ys[1:]):
        spans = sorted(
            (r.x0, r.x1) for r in rects if r.y0 <= y_lo and r.y1 >= y_hi
        )
        covered = 0
        cur_lo: int | None = None
        cur_hi: int | None = None
        for x0, x1 in spans:
            if cur_hi is None or x0 > cur_hi:
                if cur_hi is not None:
                    covered += cur_hi - cur_lo
                cur_lo, cur_hi = x0, x1
            else:
                cur_hi = max(cur_hi, x1)
        if cur_hi is not None:
            covered += cur_hi - cur_lo
        area += covered * (y_hi - y_lo)
    return area


def merge_touching(rects) -> list[Rect]:
    """Greedily merge horizontally abutting rects of equal height.

    A light-weight cleanup pass used by the synthetic layout generators to
    keep shape counts down; not a full polygon union.
    """
    by_row: dict[tuple[int, int], list[Rect]] = {}
    for r in rects:
        by_row.setdefault((r.y0, r.y1), []).append(r)

    merged: list[Rect] = []
    for (y0, y1), row in by_row.items():
        row.sort(key=lambda r: r.x0)
        cur = row[0]
        for r in row[1:]:
            if r.x0 <= cur.x1:
                cur = Rect(cur.x0, y0, max(cur.x1, r.x1), y1)
            else:
                merged.append(cur)
                cur = r
        merged.append(cur)
    return sorted(merged)
