"""Clips: fixed-size windows cut from a full-chip layout.

A clip is the unit the whole pipeline operates on — it is rasterized for
lithography simulation, featurized for the CNN, and labeled hotspot /
non-hotspot according to defects inside its *core region* (the centre
portion; context geometry in the margin influences printing but defects
there belong to neighbouring clips).  This mirrors the ICCAD contest
clip/core convention used by Definitions 1–2 of the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .geometry import Rect
from .layout import Layout
from .raster import rasterize

__all__ = ["Clip", "extract_clip", "extract_clip_grid"]


@dataclass
class Clip:
    """A layout window plus its clip-local geometry.

    Attributes
    ----------
    window:
        Absolute window rect on the chip.
    core:
        Absolute core-region rect (centered inside ``window``).
    rects:
        Geometry clipped and re-based to the window origin.
    layout_name:
        Name of the source layout.
    index:
        Position of the clip in its extraction order (stable identifier).
    """

    window: Rect
    core: Rect
    rects: list[Rect] = field(default_factory=list)
    layout_name: str = ""
    index: int = -1

    @property
    def size(self) -> tuple[int, int]:
        return (self.window.width, self.window.height)

    def core_local(self) -> Rect:
        """Core region re-based to the window origin."""
        return self.core.shifted(-self.window.x0, -self.window.y0)

    def raster(self, grid: int, antialias: bool = True) -> np.ndarray:
        """Rasterize the clip geometry to a ``(grid, grid)`` image."""
        return rasterize(self.rects, self.size, grid, antialias=antialias)

    def content_key(self) -> str:
        """Full-precision content address of this clip's geometry.

        Hashes the window dimensions and every rect at exact coordinates
        (no quantization, no truncation below 128 bits), so two ``Clip``
        instances that would rasterize identically — regardless of
        ``index``, absolute placement, or extraction order — share the
        key.  This is the identity used by content-addressed feature and
        litho-label caches.
        """
        width, height = self.size
        core = self.core_local()
        parts = sorted((r.x0, r.y0, r.x1, r.y1) for r in self.rects)
        payload = f"{width}x{height}|{core.as_tuple()}|{parts!r}"
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def core_geometry_hash(self, quantum: int = 1) -> str:
        """Hash of the geometry clipped to the core region.

        Pattern libraries match on the core pattern (the part whose
        printability the clip owns); margin context is excluded.
        """
        core = self.core_local()
        clipped = []
        for rect in self.rects:
            part = rect.intersection(core)
            if part is not None:
                clipped.append(part)
        parts = sorted(
            (r.x0 // quantum, r.y0 // quantum, r.x1 // quantum, r.y1 // quantum)
            for r in clipped
        )
        return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]

    def geometry_hash(self, quantum: int = 1) -> str:
        """Deterministic hash of the clip geometry.

        ``quantum`` snaps coordinates to a grid before hashing so that
        patterns identical up to sub-quantum jitter hash equally — the
        basis of exact pattern matching.
        """
        parts = sorted(
            (
                r.x0 // quantum,
                r.y0 // quantum,
                r.x1 // quantum,
                r.y1 // quantum,
            )
            for r in self.rects
        )
        digest = hashlib.sha256(repr(parts).encode()).hexdigest()
        return digest[:16]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Clip(#{self.index} window={self.window.as_tuple()} "
            f"{len(self.rects)} rects)"
        )


def extract_clip(
    layout: Layout, window: Rect, core_margin: int, index: int = -1
) -> Clip:
    """Cut one clip from ``layout``.

    ``core_margin`` is the border width excluded from the core region on
    each side (ICCAD'12 uses clips of 1200 nm with a 600 nm core, i.e. a
    300 nm margin).
    """
    if 2 * core_margin >= min(window.width, window.height):
        raise ValueError(
            f"core margin {core_margin} leaves no core in window "
            f"{window.width}x{window.height}"
        )
    core = window.expanded(-core_margin)
    return Clip(
        window=window,
        core=core,
        rects=layout.query_clipped(window),
        layout_name=layout.name,
        index=index,
    )


def extract_clip_grid(
    layout: Layout,
    clip_size: int,
    core_margin: int,
    step: int | None = None,
    drop_empty: bool = True,
) -> list[Clip]:
    """Tile the die with clips of ``clip_size`` at ``step`` pitch.

    ``step`` defaults to the core width so that cores tile the die without
    gaps or double coverage, the standard full-chip scan pattern.
    """
    if step is None:
        step = clip_size - 2 * core_margin
    if step <= 0:
        raise ValueError("step must be positive")

    die = layout.die
    clips: list[Clip] = []
    index = 0
    y = die.y0
    while y + clip_size <= die.y1:
        x = die.x0
        while x + clip_size <= die.x1:
            window = Rect(x, y, x + clip_size, y + clip_size)
            clip = extract_clip(layout, window, core_margin, index=index)
            if clip.rects or not drop_empty:
                clip.index = index
                clips.append(clip)
                index += 1
            x += step
        y += step
    return clips
