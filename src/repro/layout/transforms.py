"""Orientation transforms of layout geometry.

Mask layouts have the symmetry group of the square (D4): flips and
90-degree rotations of a pattern print identically under an isotropic
optical model.  These transforms supply (a) data augmentation for the
hotspot CNN and (b) canonicalization for orientation-insensitive pattern
matching.
"""

from __future__ import annotations

from .clip import Clip
from .geometry import Rect

__all__ = [
    "ORIENTATIONS",
    "transform_rect",
    "transform_rects",
    "transform_clip",
]

#: the eight square symmetries: identity, rot90/180/270, mirror-x,
#: mirror-y, and the two diagonal mirrors
ORIENTATIONS = (
    "identity",
    "rot90",
    "rot180",
    "rot270",
    "flip_x",
    "flip_y",
    "transpose",
    "antitranspose",
)


def _map_point(x: int, y: int, size: int, orientation: str) -> tuple[int, int]:
    if orientation == "identity":
        return x, y
    if orientation == "rot90":  # (x, y) -> (size - y, x)
        return size - y, x
    if orientation == "rot180":
        return size - x, size - y
    if orientation == "rot270":
        return y, size - x
    if orientation == "flip_x":  # mirror across the vertical axis
        return size - x, y
    if orientation == "flip_y":
        return x, size - y
    if orientation == "transpose":
        return y, x
    if orientation == "antitranspose":
        return size - y, size - x
    raise ValueError(
        f"unknown orientation {orientation!r}; known: {ORIENTATIONS}"
    )


def transform_rect(rect: Rect, size: int, orientation: str) -> Rect:
    """Transform ``rect`` within a ``[0, size]^2`` frame."""
    x0, y0 = _map_point(rect.x0, rect.y0, size, orientation)
    x1, y1 = _map_point(rect.x1, rect.y1, size, orientation)
    return Rect(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))


def transform_rects(rects, size: int, orientation: str) -> list[Rect]:
    return [transform_rect(rect, size, orientation) for rect in rects]


def transform_clip(clip: Clip, orientation: str) -> Clip:
    """A new clip with its local geometry transformed in place.

    Only square clips support the rotation/transpose orientations; the
    window coordinates are kept (the transform is a local augmentation,
    not a physical move on the chip).
    """
    width, height = clip.size
    if width != height and orientation not in ("identity", "flip_x", "flip_y"):
        raise ValueError(
            f"orientation {orientation!r} requires a square clip, "
            f"got {width}x{height}"
        )
    return Clip(
        window=clip.window,
        core=clip.core,
        rects=transform_rects(clip.rects, width, orientation),
        layout_name=clip.layout_name,
        index=clip.index,
    )
