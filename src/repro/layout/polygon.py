"""Rectilinear polygons and their decomposition into rectangles.

GDS layouts store arbitrary rectilinear polygons; the rest of this
package works on rectangles.  This module bridges the two: a
:class:`RectilinearPolygon` validates its contour and decomposes itself
into non-overlapping rectangles by horizontal slab sweeping, so polygon
input (e.g. L/T/U-shaped wires) flows into the same clip/raster/litho
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from .geometry import Rect

__all__ = ["RectilinearPolygon"]


@dataclass(frozen=True)
class RectilinearPolygon:
    """A simple rectilinear polygon given by its vertex ring.

    Vertices are (x, y) integer pairs in order (either orientation);
    consecutive edges must alternate horizontal/vertical, and the ring
    closes implicitly from the last vertex back to the first.
    """

    vertices: tuple

    def __post_init__(self) -> None:
        verts = tuple((int(x), int(y)) for x, y in self.vertices)
        object.__setattr__(self, "vertices", verts)
        n = len(verts)
        if n < 4:
            raise ValueError(f"need at least 4 vertices, got {n}")
        if n % 2:
            raise ValueError("rectilinear polygons have an even vertex count")
        orientations = []
        for i in range(n):
            x0, y0 = verts[i]
            x1, y1 = verts[(i + 1) % n]
            if (x0 == x1) == (y0 == y1):
                raise ValueError(
                    f"edge {i} is not axis-parallel (or has zero length): "
                    f"{(x0, y0)} -> {(x1, y1)}"
                )
            orientations.append(y0 == y1)  # True = horizontal
        for i in range(n):
            if orientations[i] == orientations[(i + 1) % n]:
                raise ValueError(
                    f"edges {i} and {(i + 1) % n} do not alternate "
                    "horizontal/vertical"
                )

    @property
    def bbox(self) -> Rect:
        xs = [x for x, _ in self.vertices]
        ys = [y for _, y in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def _edges(self):
        n = len(self.vertices)
        for i in range(n):
            yield self.vertices[i], self.vertices[(i + 1) % n]

    def to_rects(self) -> list[Rect]:
        """Decompose into disjoint rectangles (horizontal slab sweep).

        For every horizontal slab between consecutive distinct y
        coordinates, the vertical edges crossing the slab are sorted by
        x and paired by even-odd parity; each pair spans one interior
        rectangle.
        """
        ys = sorted({y for _, y in self.vertices})
        rects: list[Rect] = []
        for y_lo, y_hi in zip(ys, ys[1:]):
            crossing = []
            for (x0, y0), (x1, y1) in self._edges():
                if x0 == x1:  # vertical edge
                    lo, hi = min(y0, y1), max(y0, y1)
                    if lo <= y_lo and hi >= y_hi:
                        crossing.append(x0)
            crossing.sort()
            if len(crossing) % 2:
                raise ValueError("polygon is self-intersecting or malformed")
            for left, right in zip(crossing[::2], crossing[1::2]):
                if right > left:
                    rects.append(Rect(left, y_lo, right, y_hi))
        return rects

    @property
    def area(self) -> int:
        """Polygon area via the decomposition (exact for integers)."""
        return sum(rect.area for rect in self.to_rects())

    @classmethod
    def from_rect(cls, rect: Rect) -> "RectilinearPolygon":
        return cls(
            (
                (rect.x0, rect.y0),
                (rect.x1, rect.y0),
                (rect.x1, rect.y1),
                (rect.x0, rect.y1),
            )
        )
