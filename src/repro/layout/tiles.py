"""Tiled lazy clip iteration over a full-chip :class:`Layout`.

``extract_clip_grid`` materializes every clip of a chip at once — fine
for benchmark-sized dies, fatal for full-chip scans where the window
count runs into the millions.  A :class:`TileGrid` partitions the same
clip-window lattice into rectangular *tiles* of a few windows per edge
and iterates the clips of one tile at a time straight off the layout's
bucket index (:meth:`~repro.layout.layout.Layout.query_clipped`), so a
scan holds one tile's worth of geometry and features in memory instead
of the whole chip.

Tiles are also the unit of **incremental re-detection**: every tile has
a content digest folded from the
:meth:`~repro.layout.clip.Clip.content_key` of its clips, and a
*manifest* maps tile keys to digests.  After a layout edit, comparing
manifests tells the streaming scanner (:mod:`repro.dataplane.stream`)
exactly which tiles must be re-extracted and re-scored; untouched tiles
replay their cached verdicts bit-identically.

Clip indices here are **grid positions** (``row * n_cols + col``), so a
clip's identity is independent of the tiling and of how many neighbours
are empty.  This matches ``extract_clip_grid(..., drop_empty=False)``
ordering exactly; the ``drop_empty=True`` renumbering of the eager path
is deliberately not reproduced (a stable index is what lets verdicts
survive edits elsewhere on the chip).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

from .clip import Clip
from .geometry import Rect
from .layout import Layout

__all__ = ["Tile", "TileGrid"]

#: digest of a tile with no geometry at all (stable sentinel, so empty
#: tiles compare equal across manifests without hashing anything)
EMPTY_TILE_DIGEST = "empty"


@dataclass(frozen=True)
class Tile:
    """One rectangular block of clip windows.

    ``rows``/``cols`` are half-open ranges into the chip-wide window
    lattice; ``region`` is the union of the member windows in absolute
    nm (margins included), which is what a spatial query for "everything
    this tile can see" should use.
    """

    tx: int
    ty: int
    row0: int
    row1: int
    col0: int
    col1: int
    region: Rect

    @property
    def n_windows(self) -> int:
        return (self.row1 - self.row0) * (self.col1 - self.col0)

    @property
    def key(self) -> str:
        """Stable identifier used by manifests, cursors and stores."""
        return f"{self.tx:04d}_{self.ty:04d}"


class TileGrid:
    """The clip-window lattice of a die, partitioned into tiles.

    Parameters
    ----------
    die:
        Region to scan (typically ``layout.die``).
    clip_size / core_margin / step:
        Window geometry, identical semantics to
        :func:`~repro.layout.clip.extract_clip_grid` (``step`` defaults
        to the core width so cores tile without gaps).
    tile_clips:
        Tile edge length in clip windows.  Small tiles bound memory and
        make incremental re-detection finer-grained; large tiles
        amortize scheduling.
    """

    def __init__(
        self,
        die: Rect,
        clip_size: int,
        core_margin: int,
        step: int | None = None,
        tile_clips: int = 8,
    ) -> None:
        if 2 * core_margin >= clip_size:
            raise ValueError(
                f"core margin {core_margin} leaves no core in "
                f"{clip_size}x{clip_size} windows"
            )
        if step is None:
            step = clip_size - 2 * core_margin
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if tile_clips <= 0:
            raise ValueError(f"tile_clips must be positive, got {tile_clips}")
        self.die = die
        self.clip_size = clip_size
        self.core_margin = core_margin
        self.step = step
        self.tile_clips = tile_clips
        # windows fully inside the die, same placement rule as the
        # eager grid: x0 = die.x0 + col*step while x0 + clip_size <= x1
        self.n_cols = self._axis_count(die.x0, die.x1)
        self.n_rows = self._axis_count(die.y0, die.y1)

    @classmethod
    def for_layout(
        cls,
        layout: Layout,
        clip_size: int,
        core_margin: int,
        step: int | None = None,
        tile_clips: int = 8,
    ) -> "TileGrid":
        return cls(layout.die, clip_size, core_margin, step, tile_clips)

    def _axis_count(self, lo: int, hi: int) -> int:
        span = hi - lo
        if span < self.clip_size:
            return 0
        return (span - self.clip_size) // self.step + 1

    # ------------------------------------------------------------------
    # lattice geometry
    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        """Total clip windows on the chip (empty or not)."""
        return self.n_rows * self.n_cols

    @property
    def n_tile_cols(self) -> int:
        return -(-self.n_cols // self.tile_clips) if self.n_cols else 0

    @property
    def n_tile_rows(self) -> int:
        return -(-self.n_rows // self.tile_clips) if self.n_rows else 0

    @property
    def n_tiles(self) -> int:
        return self.n_tile_rows * self.n_tile_cols

    def window(self, row: int, col: int) -> Rect:
        """Absolute window rect of lattice position ``(row, col)``."""
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise IndexError(
                f"window ({row}, {col}) outside "
                f"{self.n_rows}x{self.n_cols} lattice"
            )
        x = self.die.x0 + col * self.step
        y = self.die.y0 + row * self.step
        return Rect(x, y, x + self.clip_size, y + self.clip_size)

    def clip_index(self, row: int, col: int) -> int:
        """Chip-global clip index of lattice position ``(row, col)``."""
        return row * self.n_cols + col

    def tile(self, tx: int, ty: int) -> Tile:
        """The tile at tile coordinates ``(tx, ty)``."""
        if not (0 <= tx < self.n_tile_cols and 0 <= ty < self.n_tile_rows):
            raise IndexError(
                f"tile ({tx}, {ty}) outside "
                f"{self.n_tile_rows}x{self.n_tile_cols} tiling"
            )
        col0 = tx * self.tile_clips
        row0 = ty * self.tile_clips
        col1 = min(col0 + self.tile_clips, self.n_cols)
        row1 = min(row0 + self.tile_clips, self.n_rows)
        first = self.window(row0, col0)
        last = self.window(row1 - 1, col1 - 1)
        return Tile(
            tx=tx,
            ty=ty,
            row0=row0,
            row1=row1,
            col0=col0,
            col1=col1,
            region=Rect(first.x0, first.y0, last.x1, last.y1),
        )

    def tiles(self) -> list[Tile]:
        """Every tile, row-major (the scan order of the lattice)."""
        return [
            self.tile(tx, ty)
            for ty in range(self.n_tile_rows)
            for tx in range(self.n_tile_cols)
        ]

    # ------------------------------------------------------------------
    # lazy clip extraction
    # ------------------------------------------------------------------
    def iter_windows(self, tile: Tile) -> Iterator[tuple[int, Rect]]:
        """``(clip_index, window)`` pairs of one tile, row-major."""
        for row in range(tile.row0, tile.row1):
            for col in range(tile.col0, tile.col1):
                yield self.clip_index(row, col), self.window(row, col)

    def iter_clips(
        self, layout: Layout, tile: Tile, drop_empty: bool = True
    ) -> Iterator[Clip]:
        """Lazily cut the clips of ``tile`` from ``layout``.

        Each window is served straight from the layout's bucket index;
        nothing outside the tile is touched.  ``drop_empty`` skips
        windows with no geometry (their index is *not* reused — see the
        module docstring on stable grid indices).
        """
        core_margin = self.core_margin
        for index, window in self.iter_windows(tile):
            rects = layout.query_clipped(window)
            if not rects and drop_empty:
                continue
            yield Clip(
                window=window,
                core=window.expanded(-core_margin),
                rects=rects,
                layout_name=layout.name,
                index=index,
            )

    # ------------------------------------------------------------------
    # content digests (incremental re-detection)
    # ------------------------------------------------------------------
    @staticmethod
    def digest_clips(clips: list[Clip]) -> str:
        """Content digest of one tile's clips.

        Folds ``index:content_key`` per clip so both the geometry and
        its lattice placement are covered; a tile whose clips merely
        shifted windows therefore re-scores.  An empty tile digests to
        the :data:`EMPTY_TILE_DIGEST` sentinel.
        """
        if not clips:
            return EMPTY_TILE_DIGEST
        folded = hashlib.sha256()
        for clip in clips:
            folded.update(f"{clip.index}:{clip.content_key()}\n".encode())
        return folded.hexdigest()[:32]

    def tile_digest(self, layout: Layout, tile: Tile) -> str:
        """Digest of ``tile`` computed directly from ``layout``."""
        return self.digest_clips(list(self.iter_clips(layout, tile)))

    def manifest(self, layout: Layout) -> dict[str, str]:
        """``tile.key -> digest`` for the whole chip.

        Comparing two manifests yields the tile set to re-detect after
        a layout edit; everything else replays.
        """
        return {
            tile.key: self.tile_digest(layout, tile)
            for tile in self.tiles()
        }

    def fingerprint(self) -> dict:
        """Lattice identity a scan cursor/manifest must match to be
        replayable (die placement, window geometry and tiling)."""
        return {
            "die": list(self.die.as_tuple()),
            "clip_size": self.clip_size,
            "core_margin": self.core_margin,
            "step": self.step,
            "tile_clips": self.tile_clips,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TileGrid({self.n_rows}x{self.n_cols} windows, "
            f"{self.n_tile_rows}x{self.n_tile_cols} tiles of "
            f"{self.tile_clips})"
        )
