"""Minimal GDSII stream-format reader/writer.

Industry layouts travel as GDSII binary streams.  This module implements
the subset needed for single-layer rectilinear mask data: one library,
one structure, BOUNDARY elements with rectangular/rectilinear contours
(rectilinear polygons are decomposed to rects on read through
:class:`~repro.layout.polygon.RectilinearPolygon`).

GDSII records are ``[u16 length][u8 record type][u8 data type][payload]``
big-endian; coordinates are 4-byte signed integers in database units
(we use 1 dbu = 1 nm).
"""

from __future__ import annotations

import struct
from pathlib import Path

from .geometry import Rect
from .layout import Layout
from .polygon import RectilinearPolygon

__all__ = ["save_gds", "load_gds"]

# record types (subset)
_HEADER = 0x00
_BGNLIB = 0x01
_LIBNAME = 0x02
_UNITS = 0x03
_ENDLIB = 0x04
_BGNSTR = 0x05
_STRNAME = 0x06
_ENDSTR = 0x07
_BOUNDARY = 0x08
_LAYER = 0x0D
_DATATYPE = 0x0E
_XY = 0x10
_ENDEL = 0x11

# data types
_NODATA = 0x00
_INT2 = 0x02
_INT4 = 0x03
_REAL8 = 0x05
_ASCII = 0x06

_ZERO_TIME = (1970, 1, 1, 0, 0, 0)


def _record(rtype: int, dtype: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    return struct.pack(">HBB", length, rtype, dtype) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\x00"
    return data


def _real8(value: float) -> bytes:
    """GDSII 8-byte excess-64 base-16 float."""
    if value == 0:
        return b"\x00" * 8
    sign = 0x80 if value < 0 else 0x00
    value = abs(value)
    exponent = 0
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">B7s", sign | (exponent + 64),
                       mantissa.to_bytes(7, "big"))


def _parse_real8(data: bytes) -> float:
    first = data[0]
    sign = -1.0 if first & 0x80 else 1.0
    exponent = (first & 0x7F) - 64
    mantissa = int.from_bytes(data[1:8], "big") / float(1 << 56)
    return sign * mantissa * 16.0**exponent


def save_gds(layout: Layout, path, layer: int = 1) -> None:
    """Write ``layout`` as a single-structure GDSII stream.

    Database unit is 1 nm (1e-9 m); user unit 1 µm.
    """
    chunks = [
        _record(_HEADER, _INT2, struct.pack(">h", 600)),
        _record(_BGNLIB, _INT2, struct.pack(">12h", *(_ZERO_TIME * 2))),
        _record(_LIBNAME, _ASCII, _ascii("REPRO")),
        _record(_UNITS, _REAL8, _real8(1e-3) + _real8(1e-9)),
        _record(_BGNSTR, _INT2, struct.pack(">12h", *(_ZERO_TIME * 2))),
        _record(_STRNAME, _ASCII, _ascii(layout.name[:32] or "TOP")),
    ]
    for rect in layout.rects:
        ring = (
            (rect.x0, rect.y0),
            (rect.x1, rect.y0),
            (rect.x1, rect.y1),
            (rect.x0, rect.y1),
            (rect.x0, rect.y0),  # GDSII closes the ring explicitly
        )
        xy = b"".join(struct.pack(">ii", x, y) for x, y in ring)
        chunks.extend(
            [
                _record(_BOUNDARY, _NODATA),
                _record(_LAYER, _INT2, struct.pack(">h", layer)),
                _record(_DATATYPE, _INT2, struct.pack(">h", 0)),
                _record(_XY, _INT4, xy),
                _record(_ENDEL, _NODATA),
            ]
        )
    chunks.append(_record(_ENDSTR, _NODATA))
    chunks.append(_record(_ENDLIB, _NODATA))
    Path(path).write_bytes(b"".join(chunks))


def _iter_records(data: bytes):
    offset = 0
    while offset + 4 <= len(data):
        length, rtype, dtype = struct.unpack_from(">HBB", data, offset)
        if length < 4:
            raise ValueError(f"corrupt GDSII record at offset {offset}")
        payload = data[offset + 4 : offset + length]
        yield rtype, dtype, payload
        offset += length
        if rtype == _ENDLIB:
            return
    raise ValueError("GDSII stream ended without ENDLIB")


def load_gds(path, tech_nm: int = 28) -> Layout:
    """Read a GDSII stream written by :func:`save_gds` (or compatible).

    All BOUNDARY elements on any layer are collected; rectilinear
    polygon contours are decomposed to rectangles.  Raises
    :class:`ValueError` on malformed streams.
    """
    data = Path(path).read_bytes()
    if len(data) < 4:
        raise ValueError(f"{path}: not a GDSII stream (too short)")

    name = "layout"
    rects: list[Rect] = []
    in_boundary = False
    saw_header = False

    for rtype, dtype, payload in _iter_records(data):
        if rtype == _HEADER:
            saw_header = True
        elif rtype == _STRNAME:
            name = payload.rstrip(b"\x00").decode("ascii", "replace")
        elif rtype == _BOUNDARY:
            in_boundary = True
        elif rtype == _XY and in_boundary:
            count = len(payload) // 8
            points = [
                struct.unpack_from(">ii", payload, i * 8)
                for i in range(count)
            ]
            if len(points) >= 2 and points[0] == points[-1]:
                points = points[:-1]  # drop the closing vertex
            if len(points) == 4:
                xs = [p[0] for p in points]
                ys = [p[1] for p in points]
                rects.append(Rect(min(xs), min(ys), max(xs), max(ys)))
            else:
                poly = RectilinearPolygon(tuple(points))
                rects.extend(poly.to_rects())
        elif rtype == _ENDEL:
            in_boundary = False

    if not saw_header:
        raise ValueError(f"{path}: missing GDSII HEADER record")
    if not rects:
        raise ValueError(f"{path}: no BOUNDARY geometry found")
    return Layout(rects, tech_nm=tech_nm, name=name)
