"""Full-chip layout container with a uniform-grid spatial index.

A :class:`Layout` stores one layer of rectilinear mask shapes over a die
region.  Clip extraction — the operation active learning performs tens of
thousands of times — is served from a bucket grid, so window queries touch
only nearby shapes instead of scanning the whole chip.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .geometry import Rect, bounding_box

__all__ = ["Layout"]


class Layout:
    """One routing/metal layer of a chip design.

    Parameters
    ----------
    rects:
        Mask shapes in integer nm coordinates.
    die:
        Die region; defaults to the bounding box of ``rects``.
    tech_nm:
        Technology node label (28 for ICCAD'12-style, 7 for ICCAD'16-style).
    name:
        Free-form identifier carried through to benchmarks and reports.
    """

    def __init__(
        self,
        rects: Sequence[Rect],
        die: Rect | None = None,
        tech_nm: int = 28,
        name: str = "layout",
        bucket_nm: int | None = None,
    ) -> None:
        self.rects: list[Rect] = list(rects)
        if die is None:
            if not self.rects:
                raise ValueError("empty layout requires an explicit die region")
            die = bounding_box(self.rects)
        self.die = die
        self.tech_nm = tech_nm
        self.name = name

        # Bucket size: a handful of typical pitches; default scales with die.
        if bucket_nm is None:
            bucket_nm = max(64, min(die.width, die.height) // 64 or 64)
        self._bucket_nm = bucket_nm
        self._grid: dict[tuple[int, int], list[int]] = {}
        for idx, rect in enumerate(self.rects):
            for key in self._buckets_of(rect):
                self._grid.setdefault(key, []).append(idx)

    def _buckets_of(self, rect: Rect) -> Iterable[tuple[int, int]]:
        b = self._bucket_nm
        for bx in range(rect.x0 // b, (rect.x1 - 1) // b + 1):
            for by in range(rect.y0 // b, (rect.y1 - 1) // b + 1):
                yield (bx, by)

    def __len__(self) -> int:
        return len(self.rects)

    def query(self, window: Rect) -> list[Rect]:
        """All shapes whose interior overlaps ``window``."""
        hits: set[int] = set()
        for key in self._buckets_of(window):
            hits.update(self._grid.get(key, ()))
        return [self.rects[i] for i in sorted(hits) if self.rects[i].intersects(window)]

    def query_clipped(self, window: Rect) -> list[Rect]:
        """Shapes overlapping ``window``, clipped to it and re-based to its
        origin — the geometry a clip rasterizer consumes."""
        out: list[Rect] = []
        for rect in self.query(window):
            part = rect.intersection(window)
            if part is not None:
                out.append(part.shifted(-window.x0, -window.y0))
        return out

    def density(self, window: Rect) -> float:
        """Fraction of ``window`` area covered by shapes (overlap-safe)."""
        from .geometry import total_area

        clipped = []
        for rect in self.query(window):
            part = rect.intersection(window)
            if part is not None:
                clipped.append(part)
        return total_area(clipped) / window.area

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Layout({self.name!r}, {len(self.rects)} rects, "
            f"die={self.die.as_tuple()}, tech={self.tech_nm}nm)"
        )
