"""GLP-style text serialization for layouts and clips.

The ICCAD contest benchmarks circulate as GDS/OASIS plus "glp" text dumps;
this module provides an equivalent plain-text format so synthetic
benchmarks can be saved, inspected, and reloaded without binary tooling:

.. code-block:: text

    GLP 1
    NAME metal1
    TECH 28
    DIE 0 0 40000 40000
    RECT 100 200 300 400
    ...
    END

Coordinates are integer nanometres, one shape per line.
"""

from __future__ import annotations

from pathlib import Path

from .geometry import Rect
from .layout import Layout

__all__ = ["save_layout", "load_layout"]

_MAGIC = "GLP 1"


def save_layout(layout: Layout, path) -> None:
    """Write ``layout`` to ``path`` in GLP text format."""
    lines = [
        _MAGIC,
        f"NAME {layout.name}",
        f"TECH {layout.tech_nm}",
        f"DIE {layout.die.x0} {layout.die.y0} {layout.die.x1} {layout.die.y1}",
    ]
    lines.extend(f"RECT {r.x0} {r.y0} {r.x1} {r.y1}" for r in layout.rects)
    lines.append("END")
    Path(path).write_text("\n".join(lines) + "\n")


def load_layout(path) -> Layout:
    """Read a layout previously written by :func:`save_layout`.

    Raises :class:`ValueError` on malformed input with the offending line
    number in the message.
    """
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise ValueError(f"{path}: not a GLP file (missing '{_MAGIC}' header)")

    name = "layout"
    tech = 28
    die: Rect | None = None
    rects: list[Rect] = []
    ended = False

    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if ended:
            raise ValueError(f"{path}:{lineno}: content after END")
        fields = line.split()
        keyword = fields[0].upper()
        try:
            if keyword == "NAME":
                name = fields[1] if len(fields) > 1 else "layout"
            elif keyword == "TECH":
                tech = int(fields[1])
            elif keyword == "DIE":
                die = Rect(*map(int, fields[1:5]))
            elif keyword == "RECT":
                rects.append(Rect(*map(int, fields[1:5])))
            elif keyword == "END":
                ended = True
            else:
                raise ValueError(f"unknown keyword {keyword!r}")
        except (IndexError, ValueError) as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None

    if not ended:
        raise ValueError(f"{path}: missing END")
    if die is None and not rects:
        raise ValueError(f"{path}: empty layout with no DIE record")
    return Layout(rects, die=die, tech_nm=tech, name=name)
