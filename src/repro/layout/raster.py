"""Rasterization of clip geometry to pixel grids.

The lithography simulator and the feature extractor both consume a binary
mask image of the clip window.  Rasterization uses area sampling on the
integer-nm grid: a pixel's value is the fraction of its area covered by
mask shapes, which keeps sub-pixel geometry (narrow necks, small gaps)
visible to the optics model instead of aliasing away.
"""

from __future__ import annotations

import numpy as np

from .geometry import Rect

__all__ = ["rasterize", "rasterize_binary"]


def rasterize(
    rects, window_size: tuple[int, int], grid: int, antialias: bool = True
) -> np.ndarray:
    """Rasterize clip-local ``rects`` into a ``(grid, grid)`` float image.

    Parameters
    ----------
    rects:
        Shapes already clipped and re-based to the window origin
        (see :meth:`repro.layout.Layout.query_clipped`).
    window_size:
        ``(width_nm, height_nm)`` of the clip window.
    grid:
        Output resolution in pixels per axis.
    antialias:
        When true, pixel values are exact coverage fractions; when false,
        a pixel is 1 if its centre is covered.

    Returns
    -------
    Image of shape ``(grid, grid)`` indexed ``[row, col]`` with row 0 at
    ``y = 0`` (layout coordinates; callers wanting screen orientation can
    flip).  Values lie in [0, 1].
    """
    width_nm, height_nm = window_size
    if width_nm <= 0 or height_nm <= 0:
        raise ValueError(f"window must be positive, got {window_size}")
    if grid <= 0:
        raise ValueError(f"grid must be positive, got {grid}")

    image = np.zeros((grid, grid), dtype=np.float64)
    px_w = width_nm / grid
    px_h = height_nm / grid

    for rect in rects:
        if antialias:
            _paint_coverage(image, rect, px_w, px_h, grid)
        else:
            _paint_centres(image, rect, px_w, px_h, grid)
    return np.clip(image, 0.0, 1.0)


def _paint_coverage(
    image: np.ndarray, rect: Rect, px_w: float, px_h: float, grid: int
) -> None:
    """Accumulate exact per-pixel coverage of one rect."""
    col0 = max(int(np.floor(rect.x0 / px_w)), 0)
    col1 = min(int(np.ceil(rect.x1 / px_w)), grid)
    row0 = max(int(np.floor(rect.y0 / px_h)), 0)
    row1 = min(int(np.ceil(rect.y1 / px_h)), grid)
    if col0 >= col1 or row0 >= row1:
        return

    cols = np.arange(col0, col1)
    rows = np.arange(row0, row1)
    # horizontal overlap of each pixel column with the rect
    x_lo = np.maximum(cols * px_w, rect.x0)
    x_hi = np.minimum((cols + 1) * px_w, rect.x1)
    frac_x = np.clip(x_hi - x_lo, 0.0, px_w) / px_w
    y_lo = np.maximum(rows * px_h, rect.y0)
    y_hi = np.minimum((rows + 1) * px_h, rect.y1)
    frac_y = np.clip(y_hi - y_lo, 0.0, px_h) / px_h

    image[np.ix_(rows, cols)] += np.outer(frac_y, frac_x)


def _paint_centres(
    image: np.ndarray, rect: Rect, px_w: float, px_h: float, grid: int
) -> None:
    """Set pixels whose centre lies inside the rect."""
    col0 = max(int(np.ceil(rect.x0 / px_w - 0.5)), 0)
    col1 = min(int(np.ceil(rect.x1 / px_w - 0.5)), grid)
    row0 = max(int(np.ceil(rect.y0 / px_h - 0.5)), 0)
    row1 = min(int(np.ceil(rect.y1 / px_h - 0.5)), grid)
    if col0 < col1 and row0 < row1:
        image[row0:row1, col0:col1] = 1.0


def rasterize_binary(rects, window_size: tuple[int, int], grid: int) -> np.ndarray:
    """Convenience wrapper returning a hard 0/1 mask (centre sampling)."""
    return rasterize(rects, window_size, grid, antialias=False)
