"""CLI entry points.

``repro-detect`` runs the whole PSHD flow on a user-supplied GLP layout:
clip extraction, feature encoding, litho-in-the-loop active sampling,
full-chip scan, and a report of detected hotspot locations.

``repro-benchmark`` builds the ICCAD-style benchmark datasets (warming
the on-disk cache) and prints Table-I statistics.

``repro-report`` regenerates the paper's tables/figures without pytest.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = [
    "main",
    "detect_main",
    "benchmark_main",
    "report_main",
    "convert_main",
    "serve_main",
    "query_main",
]


# ----------------------------------------------------------------------
# argument validation (parse-time, so bad values fail with a clear
# argparse error instead of a cryptic crash deep inside the run)
# ----------------------------------------------------------------------

def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return value


def _nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {value}"
        )
    return value


def _port(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if not 1 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"expected a port in [1, 65535], got {value}"
        )
    return value


# ----------------------------------------------------------------------
# repro-detect
# ----------------------------------------------------------------------

def build_detect_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Active-learning hotspot detection on a GLP layout.",
    )
    parser.add_argument("layout",
                        help="path to a layout file (.glp text or .gds)")
    parser.add_argument("--tech", type=int, default=None,
                        help="technology node in nm for GDS input "
                             "(GLP carries its own)")
    parser.add_argument("--clip-size", type=_positive_int, default=None,
                        help="clip window size in nm (default: per tech)")
    parser.add_argument("--core-margin", type=_positive_int, default=None,
                        help="core-region margin in nm (default: per tech)")
    parser.add_argument("--grid", type=_positive_int, default=96,
                        help="raster resolution in pixels (default 96)")
    parser.add_argument("--iterations", type=_positive_int, default=6,
                        help="active-learning iterations (default 6)")
    parser.add_argument("--batch", type=_positive_int, default=15,
                        help="clips labeled per iteration (default 15)")
    parser.add_argument("--query", type=_positive_int, default=120,
                        help="query-set size per iteration (default 120)")
    parser.add_argument("--init-train", type=_positive_int, default=30,
                        help="initial training-set size (default 30)")
    parser.add_argument("--val-size", type=_positive_int, default=24,
                        help="validation-set size (default 24)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--arch", choices=("mlp", "cnn"), default="mlp")
    parser.add_argument("--precision", choices=("exact", "fast"),
                        default="exact",
                        help="compute precision: 'exact' (default) is "
                             "bit-identical float64; 'fast' runs "
                             "inference and feature encoding in float32")
    parser.add_argument("--workers", type=_nonnegative_int, default=0,
                        help="data-plane pool width for extraction and "
                             "litho labeling (default 0 = in-process)")
    parser.add_argument("--chunk-size", type=_positive_int, default=64,
                        help="clips per data-plane chunk (default 64)")
    parser.add_argument("--feature-cache", default=None, metavar="DIR",
                        help="directory of the on-disk feature cache "
                             "(default: in-memory tier only)")
    parser.add_argument("--cache-shards", type=_nonnegative_int, default=0,
                        metavar="N",
                        help="shard the on-disk feature cache over N "
                             "subdirectories (default 0 = flat layout)")
    parser.add_argument("--max-cache-bytes", type=_positive_int, default=None,
                        metavar="B",
                        help="byte budget of the on-disk feature cache "
                             "with LRU eviction (default: unbounded)")
    parser.add_argument("--tile-size", type=_nonnegative_int, default=0, metavar="T",
                        help="run a tiled streaming full-chip scan with "
                             "the trained model, T clip windows per "
                             "tile edge (default 0 = off)")
    parser.add_argument("--shards", type=_positive_int, default=1,
                        help="work-stealing tile shards of the "
                             "streaming scan (default 1)")
    parser.add_argument("--scan-state", default=None, metavar="DIR",
                        help="state directory of the streaming scan "
                             "(per-tile verdicts + resume cursor; "
                             "default: no persistence)")
    parser.add_argument("--incremental",
                        action=argparse.BooleanOptionalAction,
                        default=True,
                        help="replay unchanged tiles from --scan-state "
                             "instead of re-scoring them (default on)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="write crash-safe run checkpoints to this "
                             "directory (default: no checkpointing)")
    parser.add_argument("--checkpoint-every", type=_positive_int, default=1,
                        metavar="K",
                        help="iterations between checkpoints when "
                             "--checkpoint-dir is set (default 1)")
    parser.add_argument("--resume", default=None, metavar="CKPT",
                        help="resume from a checkpoint written by a "
                             "previous --checkpoint-dir run (base path "
                             "or .json/.npz file); continuation is "
                             "bit-identical to an uninterrupted run")
    parser.add_argument("--guard", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="run-health supervision: sentinels + "
                             "bounded recovery + graceful degradation "
                             "(default on; --no-guard disables)")
    parser.add_argument("--max-litho", type=_positive_int, default=None, metavar="N",
                        help="litho-clip budget for the AL loop; with "
                             "the guard enabled an overrun degrades to "
                             "a graceful early stop (default: unlimited)")
    parser.add_argument("--stage-timeout", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="watchdog deadline per pooled "
                             "dataplane/litho chunk; a hung chunk is "
                             "cancelled and re-run serially "
                             "(default: no deadline)")
    parser.add_argument("--chaos-faults", type=_nonnegative_int, default=0, metavar="N",
                        help="inject N deterministic transient litho "
                             "faults into the ground-truth simulation "
                             "(robustness smoke testing)")
    from ..engine import framework_method_names

    parser.add_argument("--method", choices=framework_method_names(),
                        default="ours",
                        help="batch-selection method from the engine "
                             "registry (default: ours)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-iteration progress lines")
    parser.add_argument("--report", default=None,
                        help="write detected hotspot windows to this file")
    parser.add_argument("--svg", default=None,
                        help="render a detection-overview SVG to this file")
    return parser


def detect_main(argv=None) -> int:
    args = build_detect_parser().parse_args(argv)

    from ..core.framework import FrameworkConfig, PSHDFramework
    from ..data.dataset import ClipDataset
    from ..data.synth import DUV_RULES, EUV_RULES
    from ..dataplane import BatchFeatureExtractor, DataPlaneConfig
    from ..engine import EventBus, ProgressPrinter
    from ..features.pipeline import FeatureExtractor
    from ..layout.clip import extract_clip_grid
    from ..layout.gds import load_gds
    from ..layout.glp import load_layout
    from ..litho.labeler import LithoLabeler
    from ..litho.simulator import LithoSimulator

    try:
        if str(args.layout).lower().endswith((".gds", ".gdsii")):
            layout = load_gds(args.layout, tech_nm=args.tech or 28)
        else:
            layout = load_layout(args.layout)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.tech is not None:
        layout.tech_nm = args.tech

    rules = EUV_RULES if layout.tech_nm <= 10 else DUV_RULES
    clip_size = args.clip_size or rules.clip_size
    core_margin = args.core_margin or rules.core_margin

    print(f"layout {layout.name}: {len(layout)} shapes, "
          f"tech {layout.tech_nm} nm")
    clips = extract_clip_grid(layout, clip_size, core_margin,
                              drop_empty=False)
    if len(clips) < args.init_train + args.val_size + args.batch:
        print(
            f"error: only {len(clips)} clips; need at least "
            f"{args.init_train + args.val_size + args.batch} "
            "(reduce --init-train/--val-size/--batch)",
            file=sys.stderr,
        )
        return 2
    print(f"extracted {len(clips)} clips of {clip_size} nm")

    bus = EventBus()
    if not args.quiet:
        bus.subscribe(ProgressPrinter())

    plane_cfg = DataPlaneConfig(
        chunk_size=args.chunk_size,
        workers=args.workers,
        disk_cache_dir=args.feature_cache,
        disk_cache_shards=args.cache_shards,
        max_disk_cache_bytes=args.max_cache_bytes,
        task_timeout=args.stage_timeout,
        precision=args.precision,
    )
    simulator = LithoSimulator.for_tech(layout.tech_nm, grid=args.grid)
    if args.chaos_faults > 0:
        from ..litho.faults import FaultPlan, FlakySimulator

        # spread the faults so the per-clip retry budget absorbs each
        # one (consecutive call indices never share a fault)
        plan = FaultPlan.at(*(i * 7 for i in range(args.chaos_faults)))
        simulator = FlakySimulator(simulator, plan)
        print(f"chaos: injecting {args.chaos_faults} transient litho "
              "faults")
    print("labeling ground truth via lithography simulation "
          "(reference only; the flow is charged per queried clip)...")
    labels = np.array(
        LithoLabeler(simulator, bus=bus).label_batch(
            clips,
            chunk_size=plane_cfg.chunk_size,
            workers=plane_cfg.workers,
            executor=plane_cfg.executor,
            timeout=plane_cfg.task_timeout,
        ),
        dtype=np.int64,
    )

    extractor = FeatureExtractor(grid=args.grid)
    features = BatchFeatureExtractor(
        extractor, config=plane_cfg, bus=bus
    ).extract(clips)
    dataset = ClipDataset(
        name=layout.name,
        tech_nm=layout.tech_nm,
        clips=clips,
        labels=labels,
        tensors=features.tensors,
        flats=features.flats,
        meta={"density_cells": extractor.density_cells,
              "hashes": np.array([c.geometry_hash() for c in clips]),
              "core_hashes": np.array(
                  [c.core_geometry_hash() for c in clips]),
              "geometry_available": True},
    )
    print(f"ground truth: {dataset.n_hotspots} hotspot clips "
          f"({dataset.hotspot_ratio:.1%})")

    from ..engine.guard import GuardConfig

    config = FrameworkConfig(
        n_query=args.query,
        k_batch=args.batch,
        n_iterations=args.iterations,
        init_train=args.init_train,
        val_size=args.val_size,
        arch=args.arch,
        seed=args.seed,
        precision=args.precision,
        selector=args.method,  # resolved through the engine registry
        dataplane=plane_cfg,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=(
            args.checkpoint_every if args.checkpoint_dir else 0
        ),
        guard=GuardConfig(
            enabled=args.guard,
            max_litho=args.max_litho,
            stage_timeout=args.stage_timeout,
        ),
    )
    framework = PSHDFramework(dataset, config, bus=bus)
    if args.resume:
        from ..engine.checkpoint import CheckpointError

        try:
            result = framework.resume(args.resume)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        result = framework.run()

    print(f"\ndetection accuracy (Eq. 1): {100 * result.accuracy:.2f}%")
    print(f"litho-clips (Eq. 2):        {result.litho} "
          f"of {len(dataset)} clips")
    print(f"hits / false alarms:        {result.hits} / "
          f"{result.false_alarms}")
    print(f"modelled runtime:           {result.runtime_seconds:.0f} s")
    if result.guard is not None:
        print(f"guard report:               {result.guard['final_mode']} "
              f"({result.guard['n_alerts']} alerts, "
              f"{result.guard['n_recoveries']} recoveries)")

    scan_report = None
    if args.tile_size > 0:
        from ..dataplane.stream import StreamConfig, scan_layout

        print(f"\nstreaming full-chip scan ({args.tile_size} clips per "
              f"tile edge, {args.shards} shard(s))...")
        scan_report = scan_layout(
            layout,
            clip_size,
            core_margin,
            classifier=framework.classifier,
            temperature=framework.final_temperature_,
            extractor=extractor,
            dataplane=plane_cfg,
            stream=StreamConfig(
                tile_clips=args.tile_size,
                shards=args.shards,
                state_dir=args.scan_state,
                incremental=args.incremental,
            ),
            bus=bus,
        )
        print(f"scan: {scan_report.n_hotspots} hotspot windows in "
              f"{scan_report.n_clips} clips over {scan_report.n_tiles} "
              f"tiles ({scan_report.replayed_tiles} replayed, "
              f"{scan_report.rescored_tiles} scored)")

    if args.report and scan_report is not None:
        lines = ["# detected hotspot clip windows (x0 y0 x1 y1)"]
        for hotspot in scan_report.hotspots:
            lines.append("%d %d %d %d  # p=%.4f" % (
                *hotspot["window"], hotspot["score"]))
        with open(args.report, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"report written to {args.report}")
    elif args.report:
        lines = ["# detected hotspot clip windows (x0 y0 x1 y1)"]
        labeled_arr = result.labeled if result.labeled is not None else []
        labeled = set(int(i) for i in labeled_arr)
        for i, clip in enumerate(dataset.clips):
            if dataset.labels[i] == 1 and i in labeled:
                lines.append("%d %d %d %d  # labeled" % clip.window.as_tuple())
        with open(args.report, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"report written to {args.report}")

    if args.svg:
        from ..viz.svg import render_detection_svg

        labeled_arr = result.labeled if result.labeled is not None else []
        render_detection_svg(dataset, labeled_arr, args.svg)
        print(f"detection overview written to {args.svg}")
    return 0


# ----------------------------------------------------------------------
# repro-benchmark
# ----------------------------------------------------------------------

def build_benchmark_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-benchmark",
        description="Build ICCAD-style benchmark datasets (cached).",
    )
    parser.add_argument("names", nargs="*", default=None,
                        help="benchmark names (default: all)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the bench-standard dataset scale")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-cache", action="store_true",
                        help="force a fresh build")
    return parser


def benchmark_main(argv=None) -> int:
    args = build_benchmark_parser().parse_args(argv)

    from ..bench.harness import BENCH_SETTINGS
    from ..data.benchmarks import benchmark_names, build_benchmark

    names = args.names or benchmark_names()
    known = set(benchmark_names())
    for name in names:
        if name not in known:
            print(f"error: unknown benchmark {name!r}; known: "
                  f"{sorted(known)}", file=sys.stderr)
            return 2

    for name in names:
        if args.scale is not None:
            scale = args.scale
        elif name in BENCH_SETTINGS:
            scale = BENCH_SETTINGS[name].scale
        else:
            scale = 1.0
        dataset = build_benchmark(
            name, scale=scale, seed=args.seed, use_cache=not args.no_cache
        )
        print(f"{dataset.summary()}  (n={len(dataset)}, scale={scale:g})")
    return 0


# ----------------------------------------------------------------------
# repro-report
# ----------------------------------------------------------------------

def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts", nargs="+",
        choices=("table1", "table2", "table3", "fig2", "fig3", "fig4",
                 "fig5", "fig6a", "fig6b"),
        help="which artifacts to regenerate",
    )
    parser.add_argument("--seeds", type=int, default=None,
                        help="seeds to average over (default env/2)")
    return parser


def report_main(argv=None) -> int:
    args = build_report_parser().parse_args(argv)

    from .. import bench

    generators = {
        "table1": lambda: bench.table1()[1],
        "table2": lambda: bench.table2(seeds=args.seeds)[1],
        "table3": lambda: bench.table3(seeds=args.seeds)[1],
        "fig2": lambda: bench.fig2_reliability()[1],
        "fig3": lambda: bench.fig3_diversity()[1],
        "fig4": lambda: bench.fig4_tradeoff()[1],
        "fig5": lambda: bench.fig5_layout()[1],
        "fig6a": lambda: bench.fig6a_weights()[1],
        "fig6b": lambda: bench.fig6b_runtime()[1],
    }
    for artifact in args.artifacts:
        text = generators[artifact]()
        bench.write_report(artifact, text)
    return 0


# ----------------------------------------------------------------------
# repro-convert
# ----------------------------------------------------------------------

def build_convert_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-convert",
        description="Convert layouts between GLP text and GDSII binary.",
    )
    parser.add_argument("source", help="input layout (.glp or .gds)")
    parser.add_argument("target", help="output layout (.glp or .gds)")
    parser.add_argument("--tech", type=int, default=28,
                        help="technology nm for GDS input (default 28)")
    return parser


def convert_main(argv=None) -> int:
    args = build_convert_parser().parse_args(argv)

    from ..layout.gds import load_gds, save_gds
    from ..layout.glp import load_layout, save_layout

    def is_gds(name: str) -> bool:
        return name.lower().endswith((".gds", ".gdsii"))

    try:
        if is_gds(args.source):
            layout = load_gds(args.source, tech_nm=args.tech)
        else:
            layout = load_layout(args.source)
        if is_gds(args.target):
            save_gds(layout, args.target)
        else:
            save_layout(layout, args.target)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.source} -> {args.target}: {len(layout)} shapes")
    return 0


# ----------------------------------------------------------------------
# repro-serve
# ----------------------------------------------------------------------

def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Batched hotspot-detection daemon on a layout: "
                    "quick-train a model, start the DetectionServer, "
                    "and drive it with concurrent demo clients.",
    )
    parser.add_argument("layout",
                        help="path to a layout file (.glp text or .gds)")
    parser.add_argument("--tech", type=int, default=None,
                        help="technology node in nm for GDS input "
                             "(GLP carries its own)")
    parser.add_argument("--grid", type=_positive_int, default=96,
                        help="raster resolution in pixels (default 96)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--arch", choices=("mlp", "cnn"), default="mlp")
    parser.add_argument("--precision", choices=("exact", "fast"),
                        default="exact")
    parser.add_argument("--train-clips", type=_positive_int, default=48,
                        metavar="N",
                        help="clips litho-labeled to train the served "
                             "model (default 48)")
    parser.add_argument("--epochs", type=_positive_int, default=6,
                        help="training epochs of the served model "
                             "(default 6)")
    parser.add_argument("--clients", type=_positive_int, default=2,
                        help="concurrent demo clients (default 2)")
    parser.add_argument("--requests", type=_positive_int, default=4,
                        metavar="M",
                        help="requests per client (default 4)")
    parser.add_argument("--request-clips", type=_positive_int, default=8,
                        metavar="K",
                        help="clips per request (default 8)")
    parser.add_argument("--batch-clips", type=_positive_int, default=256,
                        metavar="B",
                        help="largest coalesced dispatch in clips "
                             "(default 256)")
    parser.add_argument("--delay-ms", type=_nonnegative_float, default=2.0,
                        help="micro-batch coalescing window in "
                             "milliseconds (default 2)")
    parser.add_argument("--max-pending", type=_positive_int, default=2048,
                        help="admission bound on queued clips "
                             "(default 2048)")
    parser.add_argument("--threshold", type=_nonnegative_float, default=0.5,
                        help="hotspot verdict threshold on the "
                             "calibrated probability (default 0.5)")
    parser.add_argument("--max-litho", type=_positive_int, default=None,
                        metavar="N",
                        help="litho-clip budget shared by training and "
                             "want-labels serving (default: unlimited)")
    parser.add_argument("--chunk-size", type=_positive_int, default=64,
                        help="clips per data-plane chunk (default 64)")
    parser.add_argument("--listen", default=None, metavar="HOST",
                        help="serve over the network: bind this host "
                             "and accept framed socket requests until "
                             "SIGTERM (default: in-process demo mode)")
    parser.add_argument("--port", type=_port, default=7643,
                        help="TCP port of --listen mode (default 7643)")
    parser.add_argument("--max-connections", type=_positive_int,
                        default=32, metavar="N",
                        help="live-connection cap; further connections "
                             "are shed with a retryable error frame "
                             "(default 32)")
    parser.add_argument("--read-timeout", type=_positive_float,
                        default=30.0, metavar="SECONDS",
                        help="per-connection read deadline (default 30)")
    parser.add_argument("--write-timeout", type=_positive_float,
                        default=30.0, metavar="SECONDS",
                        help="per-connection write deadline (default 30)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request event lines")
    return parser


def serve_main(argv=None) -> int:
    args = build_serve_parser().parse_args(argv)

    import threading
    import time

    from ..engine import EventBus, ProgressPrinter
    from ..engine.guard import GuardConfig, RunSupervisor
    from ..layout.gds import load_gds
    from ..layout.glp import load_layout
    from ..serve import ServeConfig
    from ..serve.bootstrap import bootstrap_server

    try:
        if str(args.layout).lower().endswith((".gds", ".gdsii")):
            layout = load_gds(args.layout, tech_nm=args.tech or 28)
        else:
            layout = load_layout(args.layout)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.tech is not None:
        layout.tech_nm = args.tech

    bus = EventBus()
    if not args.quiet:
        bus.subscribe(ProgressPrinter())

    supervisor = RunSupervisor(GuardConfig(max_litho=args.max_litho), bus)
    supervisor.attach()
    try:
        booted = bootstrap_server(
            layout,
            train_clips=args.train_clips,
            grid=args.grid,
            seed=args.seed,
            arch=args.arch,
            epochs=args.epochs,
            precision=args.precision,
            chunk_size=args.chunk_size,
            max_litho=args.max_litho,
            serve_config=ServeConfig(
                max_batch_clips=args.batch_clips,
                max_delay_s=args.delay_ms / 1e3,
                max_pending_clips=args.max_pending,
                threshold=args.threshold,
            ),
            bus=bus,
            supervisor=supervisor,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = booted.server
    print(f"layout {layout.name}: {len(booted.clips)} clips, "
          f"tech {layout.tech_nm} nm")
    print(f"model v1 trained on {args.train_clips} clips "
          f"({int(booted.train_labels.sum())} hotspots, "
          f"T={booted.temperature.temperature_:.3f})")

    if args.listen is not None:
        from ..serve.transport import SocketTransport, TransportConfig

        transport = SocketTransport(
            server,
            config=TransportConfig(
                host=args.listen,
                port=args.port,
                max_connections=args.max_connections,
                read_timeout_s=args.read_timeout,
                write_timeout_s=args.write_timeout,
            ),
            bus=bus,
            supervisor=supervisor,
        )
        transport.start()
        # the reconnect tests parse this exact line for readiness
        print(f"listening on {transport.address[0]}:"
              f"{transport.address[1]} (pid {os.getpid()})",
              flush=True)
        transport.run_until_signalled()
        supervisor.detach()
        stats = server.stats()
        print(f"drained: served {stats['completed']} requests, "
              f"{stats['rejected']} shed")
        return 0

    if len(booted.serve_pool) < args.request_clips:
        print(
            f"error: only {len(booted.serve_pool)} clips left to serve; "
            "reduce --train-clips/--request-clips",
            file=sys.stderr,
        )
        server.close(drain=False)
        return 2
    serve_pool = booted.serve_pool
    latencies: list[float] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        rng = np.random.default_rng(args.seed + 1000 + index)
        for _ in range(args.requests):
            rows = rng.choice(len(serve_pool), size=args.request_clips,
                              replace=False)
            request = [serve_pool[int(r)] for r in rows]
            started = time.perf_counter()
            result = server.submit(request, model="v1", timeout=120.0)
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
            assert len(result.scores) == args.request_clips

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(args.clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    wall = time.perf_counter() - wall_start
    server.close(drain=True)
    supervisor.detach()

    if any(thread.is_alive() for thread in threads):
        print("error: serve clients did not finish", file=sys.stderr)
        return 1

    stats = server.stats()
    total_clips = args.clients * args.requests * args.request_clips
    lat_ms = np.sort(np.asarray(latencies)) * 1e3
    print(f"\nserved {stats['completed']} requests / {total_clips} clips "
          f"in {wall:.2f}s ({total_clips / wall:.0f} clips/s)")
    print(f"latency p50 {np.percentile(lat_ms, 50):.1f} ms, "
          f"p99 {np.percentile(lat_ms, 99):.1f} ms")
    print(f"dispatched {stats['batches']} batches, mean "
          f"{stats['mean_batch_clips']:.1f} clips/batch")
    for tenant, counters in sorted(stats["cache_tenants"].items()):
        print(f"cache[{tenant}]: {counters['hits']} hits, "
              f"{counters['misses']} misses")
    return 0


# ----------------------------------------------------------------------
# repro-query
# ----------------------------------------------------------------------

def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query",
        description="Remote client of a `repro serve --listen` daemon: "
                    "submit clips off a layout for scoring, or probe "
                    "the daemon's health/stats.",
    )
    parser.add_argument("layout", nargs="?", default=None,
                        help="layout file (.glp/.gds) whose clips are "
                             "submitted (omit with --health/--stats)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="daemon host (default 127.0.0.1)")
    parser.add_argument("--port", type=_port, default=7643,
                        help="daemon port (default 7643)")
    parser.add_argument("--tech", type=int, default=None,
                        help="technology node in nm for GDS input")
    parser.add_argument("--model", default=None,
                        help="model version to score with (default: the "
                             "daemon's single registered model)")
    parser.add_argument("--clips", type=_positive_int, default=16,
                        metavar="N",
                        help="clips submitted per request (default 16)")
    parser.add_argument("--offset", type=_nonnegative_int, default=0,
                        metavar="K",
                        help="skip the first K extracted clips "
                             "(default 0)")
    parser.add_argument("--requests", type=_positive_int, default=1,
                        metavar="M",
                        help="consecutive requests to send (default 1)")
    parser.add_argument("--timeout", type=_positive_float, default=30.0,
                        metavar="SECONDS",
                        help="end-to-end deadline per request; the "
                             "remaining budget rides the frame header "
                             "and bounds the server-side batch wait "
                             "(default 30)")
    parser.add_argument("--retries", type=_positive_int, default=5,
                        help="attempts per request on retryable "
                             "transport faults (default 5)")
    parser.add_argument("--health", action="store_true",
                        help="print the daemon's health JSON and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print the daemon's stats JSON (transport "
                             "+ server counters + guard report) and "
                             "exit")
    return parser


def query_main(argv=None) -> int:
    args = build_query_parser().parse_args(argv)

    import json

    from ..serve.transport import (
        ClientConfig,
        DetectionClient,
        TransportError,
    )

    config = ClientConfig(
        host=args.host,
        port=args.port,
        timeout_s=args.timeout,
        retries=args.retries,
    )
    with DetectionClient(config) as client:
        try:
            if args.health or args.stats:
                probe = client.health() if args.health else client.stats()
                print(json.dumps(probe, indent=2, sort_keys=True))
                return 0
            if args.layout is None:
                print("error: a layout is required unless --health or "
                      "--stats is given", file=sys.stderr)
                return 2

            from ..data.synth import DUV_RULES, EUV_RULES
            from ..layout.clip import extract_clip_grid
            from ..layout.gds import load_gds
            from ..layout.glp import load_layout

            try:
                if str(args.layout).lower().endswith((".gds", ".gdsii")):
                    layout = load_gds(args.layout, tech_nm=args.tech or 28)
                else:
                    layout = load_layout(args.layout)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if args.tech is not None:
                layout.tech_nm = args.tech
            rules = EUV_RULES if layout.tech_nm <= 10 else DUV_RULES
            clips = extract_clip_grid(
                layout, rules.clip_size, rules.core_margin, drop_empty=False
            )[args.offset :]
            if not clips:
                print(f"error: no clips past --offset {args.offset}",
                      file=sys.stderr)
                return 2

            total = hotspots = 0
            for i in range(args.requests):
                chunk = clips[i * args.clips : (i + 1) * args.clips]
                if not chunk:
                    break
                result = client.submit(chunk, model=args.model)
                total += len(result.scores)
                hotspots += result.n_hotspots
                print(f"request {i + 1}: {result.n_hotspots} hotspots in "
                      f"{len(result.scores)} clips "
                      f"(model {result.model}, coalesced "
                      f"{result.coalesced})")
            print(f"total: {hotspots} hotspots in {total} clips")
            return 0
        except TransportError as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1


# ----------------------------------------------------------------------
# umbrella entry point
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    """Umbrella dispatcher: ``repro <detect|serve|benchmark|...> ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: repro <detect|serve|query|benchmark|report|convert> "
              "[options]\n"
              "  detect     run PSHD on a layout (.glp/.gds)\n"
              "  serve      batched detection daemon (--listen for the\n"
              "             network transport, else demo clients)\n"
              "  query      remote client of a serve --listen daemon\n"
              "  benchmark  build ICCAD-style datasets\n"
              "  report     regenerate the paper's tables/figures\n"
              "  convert    convert between GLP and GDSII")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "detect":
        return detect_main(rest)
    if command == "serve":
        return serve_main(rest)
    if command == "query":
        return query_main(rest)
    if command == "benchmark":
        return benchmark_main(rest)
    if command == "report":
        return report_main(rest)
    if command == "convert":
        return convert_main(rest)
    print(f"error: unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
