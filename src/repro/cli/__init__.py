"""Command-line interface.

Three entry points mirror how a downstream user consumes the library:

* ``repro-detect``   — run PSHD on a GLP layout file end to end.
* ``repro-serve``    — batched detection daemon (demo clients, or a
  framed socket transport with ``--listen``).
* ``repro-query``    — remote client of a ``--listen`` daemon.
* ``repro-benchmark``— build / inspect the ICCAD-style benchmark suites.
* ``repro-report``   — regenerate the paper's tables and figures.

All are thin wrappers over the public API; see :mod:`repro.cli.main`.
"""

from .main import (
    benchmark_main,
    convert_main,
    detect_main,
    main,
    query_main,
    report_main,
    serve_main,
)

__all__ = [
    "main",
    "detect_main",
    "benchmark_main",
    "report_main",
    "convert_main",
    "serve_main",
    "query_main",
]
