"""Feature extraction substrate (S5): block-DCT encoding and density
signatures turning layout clips into model-ready tensors."""

from .augment import TENSOR_ORIENTATIONS, augment_tensor, augmentation_batch
from .dct import (
    block_dct,
    dct_decode,
    dct_encode,
    dct_encode_stack,
    zigzag_indices,
)
from .density import density_grid, density_grid_stack, density_stats
from .pipeline import FeatureExtractor

__all__ = [
    "zigzag_indices",
    "block_dct",
    "dct_encode",
    "dct_encode_stack",
    "dct_decode",
    "density_grid",
    "density_grid_stack",
    "density_stats",
    "FeatureExtractor",
    "augment_tensor",
    "augmentation_batch",
    "TENSOR_ORIENTATIONS",
]
