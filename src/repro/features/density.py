"""Density-based layout features.

Coarse pattern-density grids are the classic pre-CNN hotspot feature and
remain useful as a cheap signature for pattern matching and for the GMM
that seeds the active-learning loop.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract

__all__ = ["density_grid", "density_grid_stack", "density_stats"]


@contract(image="f8[H,W]", returns="f8[D]")
def density_grid(image: np.ndarray, cells: int = 8) -> np.ndarray:
    """Average coverage in a ``cells x cells`` grid over the raster.

    Returns a flat vector of length ``cells**2`` with values in [0, 1].
    """
    h, w = image.shape
    if h % cells or w % cells:
        raise ValueError(f"raster {image.shape} not divisible by {cells}")
    # one kernel for both entry points: the stacked reduction over a
    # single-image batch reduces the same elements in the same memory
    # order, so delegation is bit-identical
    return density_grid_stack(image[None], cells)[0]


@contract(images="f8[N,H,W]", returns="f8[N,D]")
def density_grid_stack(images: np.ndarray, cells: int = 8) -> np.ndarray:
    """Density grids of a raster stack, shape ``(N, cells**2)``.

    Vectorized over the batch axis and bit-identical to calling
    :func:`density_grid` per image (each cell mean reduces the same
    elements in the same memory order).
    """
    images = np.asarray(images)
    if images.ndim != 3:
        raise ValueError(f"expected (N, H, W) stack, got shape {images.shape}")
    n, h, w = images.shape
    if h % cells or w % cells:
        raise ValueError(f"rasters {images.shape[1:]} not divisible by {cells}")
    if n == 0:
        return np.zeros((0, cells * cells))
    ch, cw = h // cells, w // cells
    grid = images.reshape(n, cells, ch, cells, cw).mean(axis=(2, 4))
    return grid.reshape(n, -1)


@contract(image="f8[H,W]", returns="f8[5]")
def density_stats(image: np.ndarray) -> np.ndarray:
    """Five summary statistics of a clip raster.

    ``[mean, std, max, edge-density-x, edge-density-y]`` — edge densities
    are mean absolute finite differences, a proxy for pattern complexity.
    """
    gx = np.abs(np.diff(image, axis=1)).mean() if image.shape[1] > 1 else 0.0
    gy = np.abs(np.diff(image, axis=0)).mean() if image.shape[0] > 1 else 0.0
    return np.array(
        [image.mean(), image.std(), image.max(), gx, gy], dtype=np.float64
    )
