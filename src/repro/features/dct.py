"""Block-DCT feature encoding of clip rasters.

Hotspot CNNs in the Yang et al. lineage (which the paper builds on) do not
consume raw clip pixels: the clip image is divided into a grid of blocks,
each block is transformed with a 2-D DCT, and the first ``k`` zigzag
coefficients of every block are kept.  The result is a compact
``(blocks, blocks, k)`` tensor — low-frequency layout structure with an
order-of-magnitude fewer inputs than the raw raster.

The encoder evaluates the transform as a matmul against a precomputed
orthonormal DCT basis whose columns are already zigzag-ordered and
truncated to ``k`` — coefficient selection is fused into the gemm instead
of a post-hoc fancy-index pass.  The exact (float64) kernel batches the
matmul per image with a fixed ``(blocks², bh·bw)`` slice shape, which
keeps :func:`dct_encode` and :func:`dct_encode_stack` bit-identical for
every batch size (BLAS gemm results are stable for a fixed M but not
across different M).  The float32 fast path collapses the whole stack
into one ``(N·blocks², bh·bw) @ (bh·bw, k)`` gemm.  Zigzag orders, index
arrays and basis matrices are memoized per block size.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.fft import dctn, idctn

from ..analysis.contracts import contract
from ..nn.runtime import PrecisionPolicy

__all__ = [
    "zigzag_indices",
    "block_dct",
    "dct_encode",
    "dct_encode_stack",
    "dct_decode",
]


@lru_cache(maxsize=None)
def _zigzag_order(size: int) -> tuple[tuple[int, int], ...]:
    """Memoized zigzag scan order of a ``size x size`` block."""
    order = []
    for s in range(2 * size - 1):
        diagonal = [
            (i, s - i) for i in range(size) if 0 <= s - i < size
        ]
        if s % 2 == 0:
            diagonal.reverse()  # even diagonals run bottom-left to top-right
        order.extend(diagonal)
    return tuple(order)


def zigzag_indices(size: int) -> list[tuple[int, int]]:
    """Zigzag scan order of a ``size x size`` block (JPEG convention)."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    return list(_zigzag_order(size))


@lru_cache(maxsize=None)
def _zigzag_arrays(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Memoized ``(rows, cols)`` scatter/gather index arrays (read-only)."""
    order = _zigzag_order(size)
    rows = np.array([r for r, _ in order])
    cols = np.array([c for _, c in order])
    rows.flags.writeable = False
    cols.flags.writeable = False
    return rows, cols


@lru_cache(maxsize=None)
def _dct_basis_1d(size: int) -> np.ndarray:
    """Orthonormal DCT-II basis ``D`` with ``D[k, n]`` the weight of
    sample ``n`` in coefficient ``k`` (read-only, float64)."""
    n = np.arange(size)
    basis = np.cos(np.pi * (2 * n[None, :] + 1) * n[:, None] / (2 * size))
    basis *= np.sqrt(2.0 / size)
    basis[0, :] = np.sqrt(1.0 / size)
    basis.flags.writeable = False
    return basis


@lru_cache(maxsize=None)
def _dct_basis_2d(size: int, coeffs: int, dtype_name: str) -> np.ndarray:
    """Memoized flattened 2-D DCT basis, zigzag-truncated to ``coeffs``.

    Shape ``(size², coeffs)``: column ``j`` holds the 2-D basis function
    of the ``j``-th zigzag coefficient, flattened row-major, so
    ``block.reshape(-1) @ basis`` yields the leading zigzag coefficients
    directly — truncation is fused into the matmul.
    """
    d = _dct_basis_1d(size)
    # kron(d, d)[u*size+v, y*size+x] = d[u, y] * d[v, x]: rows map flat
    # pixels to flat (u, v) coefficients
    full = np.kron(d, d)
    rows, cols = _zigzag_arrays(size)
    selected = full[rows[:coeffs] * size + cols[:coeffs]]
    basis = np.ascontiguousarray(selected.T, dtype=np.dtype(dtype_name))
    basis.flags.writeable = False
    return basis


@contract(image="f8[H,W]", returns="f8[B,B,*,*]")
def block_dct(image: np.ndarray, blocks: int) -> np.ndarray:
    """Per-block orthonormal 2-D DCT of ``image`` split into a grid.

    Returns shape ``(blocks, blocks, bh, bw)`` where ``bh = H // blocks``.
    Reference implementation on ``scipy.fft.dctn``; the encoder's basis
    matmul agrees with it to float64 rounding.
    """
    h, w = image.shape
    if h % blocks or w % blocks:
        raise ValueError(
            f"image {image.shape} not divisible into {blocks}x{blocks} blocks"
        )
    bh, bw = h // blocks, w // blocks
    tiles = image.reshape(blocks, bh, blocks, bw).transpose(0, 2, 1, 3)
    return dctn(tiles, axes=(2, 3), norm="ortho")


@contract(image="f8[H,W]", returns="f8[C,B,B]")
def dct_encode(
    image: np.ndarray,
    blocks: int = 12,
    coeffs: int = 32,
    policy: PrecisionPolicy | None = None,
) -> np.ndarray:
    """Encode a clip raster into a ``(coeffs, blocks, blocks)`` tensor.

    The channel axis comes first (NCHW minus the batch axis) so encoded
    clips feed :class:`repro.nn.Conv2D` directly.  Delegates to the
    stacked kernel, whose fixed per-image gemm shape makes the two
    bit-identical.
    """
    h, w = image.shape
    if h % blocks or w % blocks:
        raise ValueError(
            f"image {image.shape} not divisible into {blocks}x{blocks} blocks"
        )
    bh, bw = h // blocks, w // blocks
    if bh != bw:
        raise ValueError(f"non-square blocks {bh}x{bw} unsupported")
    if coeffs > bh * bw:
        raise ValueError(
            f"requested {coeffs} coefficients but blocks have {bh * bw}"
        )
    return dct_encode_stack(image[None], blocks, coeffs, policy=policy)[0]


@contract(images="f8[N,H,W]", returns="f8[N,C,B,B]")
def dct_encode_stack(
    images: np.ndarray,
    blocks: int = 12,
    coeffs: int = 32,
    policy: PrecisionPolicy | None = None,
) -> np.ndarray:
    """Encode a stack of rasters into ``(N, coeffs, blocks, blocks)``.

    One basis matmul transforms and truncates every block of every
    image.  In exact mode (the default) the gemm is batched per image so
    each BLAS call sees the same ``(blocks², bh·bw)`` slice shape — that
    keeps results bit-identical to per-clip :func:`dct_encode` calls for
    any batch size.  A fast (float32) policy computes one flat gemm over
    the whole stack and upcasts the result; feature tensors stay float64
    at the boundary either way.
    """
    images = np.asarray(images)
    if images.ndim != 3:
        raise ValueError(f"expected (N, H, W) stack, got shape {images.shape}")
    n, h, w = images.shape
    if h % blocks or w % blocks:
        raise ValueError(
            f"images {images.shape[1:]} not divisible into "
            f"{blocks}x{blocks} blocks"
        )
    bh, bw = h // blocks, w // blocks
    if bh != bw:
        raise ValueError(f"non-square blocks {bh}x{bw} unsupported")
    if coeffs > bh * bw:
        raise ValueError(
            f"requested {coeffs} coefficients but blocks have {bh * bw}"
        )
    if n == 0:
        return np.zeros((0, coeffs, blocks, blocks))

    if policy is not None and not policy.is_exact:
        compute = policy.compute_dtype
        basis = _dct_basis_2d(bh, coeffs, compute.name)
        tiles = policy.compute(images).reshape(
            n, blocks, bh, blocks, bw
        ).transpose(0, 1, 3, 2, 4)
        flat = tiles.reshape(n * blocks * blocks, bh * bw)
        spectra = flat @ basis
        out = spectra.reshape(n, blocks, blocks, coeffs).transpose(0, 3, 1, 2)
        return policy.boundary(np.ascontiguousarray(out))

    basis = _dct_basis_2d(bh, coeffs, "float64")
    tiles = images.reshape(n, blocks, bh, blocks, bw).transpose(0, 1, 3, 2, 4)
    flat = tiles.reshape(n, blocks * blocks, bh * bw)
    spectra = flat @ basis
    # (N, blocks², coeffs) -> (N, coeffs, blocks, blocks)
    return spectra.reshape(n, blocks, blocks, coeffs).transpose(0, 3, 1, 2)


@contract(tensor="f8[C,B,B]", returns="f8[H,W]")
def dct_decode(tensor: np.ndarray, block_size: int) -> np.ndarray:
    """Approximate inverse of :func:`dct_encode` (truncated spectrum).

    Useful for visualizing what the CNN actually sees; reconstruction is
    lossy because only the leading zigzag coefficients were kept.
    """
    coeffs, blocks_y, blocks_x = tensor.shape
    rows, cols = _zigzag_arrays(block_size)
    spectra = np.zeros((blocks_y, blocks_x, block_size, block_size))
    spectra[:, :, rows[:coeffs], cols[:coeffs]] = np.moveaxis(tensor, 0, -1)
    tiles = idctn(spectra, axes=(2, 3), norm="ortho")
    image = tiles.transpose(0, 2, 1, 3).reshape(
        blocks_y * block_size, blocks_x * block_size
    )
    return image
