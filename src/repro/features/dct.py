"""Block-DCT feature encoding of clip rasters.

Hotspot CNNs in the Yang et al. lineage (which the paper builds on) do not
consume raw clip pixels: the clip image is divided into a grid of blocks,
each block is transformed with a 2-D DCT, and the first ``k`` zigzag
coefficients of every block are kept.  The result is a compact
``(blocks, blocks, k)`` tensor — low-frequency layout structure with an
order-of-magnitude fewer inputs than the raw raster.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

from ..analysis.contracts import contract

__all__ = [
    "zigzag_indices",
    "block_dct",
    "dct_encode",
    "dct_encode_stack",
    "dct_decode",
]


def zigzag_indices(size: int) -> list[tuple[int, int]]:
    """Zigzag scan order of a ``size x size`` block (JPEG convention)."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    order = []
    for s in range(2 * size - 1):
        diagonal = [
            (i, s - i) for i in range(size) if 0 <= s - i < size
        ]
        if s % 2 == 0:
            diagonal.reverse()  # even diagonals run bottom-left to top-right
        order.extend(diagonal)
    return order


@contract(image="f8[H,W]", returns="f8[B,B,*,*]")
def block_dct(image: np.ndarray, blocks: int) -> np.ndarray:
    """Per-block orthonormal 2-D DCT of ``image`` split into a grid.

    Returns shape ``(blocks, blocks, bh, bw)`` where ``bh = H // blocks``.
    """
    h, w = image.shape
    if h % blocks or w % blocks:
        raise ValueError(
            f"image {image.shape} not divisible into {blocks}x{blocks} blocks"
        )
    bh, bw = h // blocks, w // blocks
    tiles = image.reshape(blocks, bh, blocks, bw).transpose(0, 2, 1, 3)
    return dctn(tiles, axes=(2, 3), norm="ortho")


@contract(image="f8[H,W]", returns="f8[C,B,B]")
def dct_encode(image: np.ndarray, blocks: int = 12, coeffs: int = 32) -> np.ndarray:
    """Encode a clip raster into a ``(coeffs, blocks, blocks)`` tensor.

    The channel axis comes first (NCHW minus the batch axis) so encoded
    clips feed :class:`repro.nn.Conv2D` directly.
    """
    spectra = block_dct(image, blocks)
    bh, bw = spectra.shape[2], spectra.shape[3]
    if coeffs > bh * bw:
        raise ValueError(
            f"requested {coeffs} coefficients but blocks have {bh * bw}"
        )
    if bh != bw:
        raise ValueError(f"non-square blocks {bh}x{bw} unsupported")
    order = zigzag_indices(bh)[:coeffs]
    rows = np.array([r for r, _ in order])
    cols = np.array([c for _, c in order])
    # (blocks, blocks, coeffs) -> (coeffs, blocks, blocks)
    return spectra[:, :, rows, cols].transpose(2, 0, 1)


@contract(images="f8[N,H,W]", returns="f8[N,C,B,B]")
def dct_encode_stack(
    images: np.ndarray, blocks: int = 12, coeffs: int = 32
) -> np.ndarray:
    """Encode a stack of rasters into ``(N, coeffs, blocks, blocks)``.

    Vectorized over the batch axis: one ``dctn`` call transforms every
    block of every image, which is both faster than per-image calls and
    bit-identical to :func:`dct_encode` (the per-block 1-D transforms see
    exactly the same data either way).
    """
    images = np.asarray(images)
    if images.ndim != 3:
        raise ValueError(f"expected (N, H, W) stack, got shape {images.shape}")
    n, h, w = images.shape
    if h % blocks or w % blocks:
        raise ValueError(
            f"images {images.shape[1:]} not divisible into "
            f"{blocks}x{blocks} blocks"
        )
    bh, bw = h // blocks, w // blocks
    if bh != bw:
        raise ValueError(f"non-square blocks {bh}x{bw} unsupported")
    if coeffs > bh * bw:
        raise ValueError(
            f"requested {coeffs} coefficients but blocks have {bh * bw}"
        )
    if n == 0:
        return np.zeros((0, coeffs, blocks, blocks))
    tiles = images.reshape(n, blocks, bh, blocks, bw).transpose(0, 1, 3, 2, 4)
    spectra = dctn(tiles, axes=(3, 4), norm="ortho")
    order = zigzag_indices(bh)[:coeffs]
    rows = np.array([r for r, _ in order])
    cols = np.array([c for _, c in order])
    # (N, blocks, blocks, coeffs) -> (N, coeffs, blocks, blocks)
    return spectra[:, :, :, rows, cols].transpose(0, 3, 1, 2)


@contract(tensor="f8[C,B,B]", returns="f8[H,W]")
def dct_decode(tensor: np.ndarray, block_size: int) -> np.ndarray:
    """Approximate inverse of :func:`dct_encode` (truncated spectrum).

    Useful for visualizing what the CNN actually sees; reconstruction is
    lossy because only the leading zigzag coefficients were kept.
    """
    coeffs, blocks_y, blocks_x = tensor.shape
    order = zigzag_indices(block_size)[:coeffs]
    spectra = np.zeros((blocks_y, blocks_x, block_size, block_size))
    for channel, (r, c) in enumerate(order):
        spectra[:, :, r, c] = tensor[channel]
    tiles = idctn(spectra, axes=(2, 3), norm="ortho")
    image = tiles.transpose(0, 2, 1, 3).reshape(
        blocks_y * block_size, blocks_x * block_size
    )
    return image
