"""Orientation augmentation directly in the DCT feature domain.

Hotspot CNN training benefits from D4 (square-symmetry) augmentation,
but our features are block-DCT tensors, and re-rasterizing plus
re-encoding every augmented clip would dominate training time.  The DCT
basis makes that unnecessary: flips and transposes of the *image* map to
exact, cheap transforms of the *tensor*:

* flipping an image axis reverses the block grid along that axis and
  multiplies each within-block coefficient of index ``u`` on that axis
  by ``(-1)^u`` (a property of the DCT-II basis functions);
* transposing the image transposes the block grid and swaps each
  coefficient's ``(row, col)`` frequency indices, which permutes the
  zigzag channel order.

The equivalence ``encode(transform(image)) == augment(encode(image))``
is asserted exactly in the test suite.
"""

from __future__ import annotations

import numpy as np

from .dct import zigzag_indices

__all__ = ["augment_tensor", "augmentation_batch", "TENSOR_ORIENTATIONS"]

TENSOR_ORIENTATIONS = (
    "identity",
    "flip_x",
    "flip_y",
    "transpose",
    "rot90",
    "rot180",
    "rot270",
    "antitranspose",
)


def _sign_vector(block_size: int, axis_index) -> np.ndarray:
    """(-1)^u per zigzag channel for the given coefficient index axis."""
    order = zigzag_indices(block_size)
    return np.array([(-1.0) ** axis_index(r, c) for r, c in order])


def _transpose_permutation(block_size: int, channels: int) -> np.ndarray:
    """Channel permutation realizing the (r, c) -> (c, r) swap.

    Valid whenever the kept zigzag prefix is closed under transposition,
    which holds for any whole number of leading diagonals (in particular
    for the full spectrum used by default).
    """
    order = zigzag_indices(block_size)[:channels]
    position = {rc: i for i, rc in enumerate(order)}
    perm = np.empty(channels, dtype=np.int64)
    for i, (r, c) in enumerate(order):
        swapped = position.get((c, r))
        if swapped is None:
            raise ValueError(
                f"zigzag prefix of {channels} channels is not closed under "
                "transposition; use a full diagonal count"
            )
        perm[i] = swapped
    return perm


def augment_tensor(
    tensor: np.ndarray, orientation: str, block_size: int = 8
) -> np.ndarray:
    """Transform a ``(C, H, W)`` DCT tensor as if the source image had
    been flipped/rotated, without touching the image."""
    if tensor.ndim != 3:
        raise ValueError(f"expected (C, H, W) tensor, got {tensor.shape}")
    if orientation not in TENSOR_ORIENTATIONS:
        raise ValueError(
            f"unknown orientation {orientation!r}; known: "
            f"{TENSOR_ORIENTATIONS}"
        )
    if orientation == "identity":
        return tensor.copy()
    channels = tensor.shape[0]
    if orientation == "flip_x":
        signs = _sign_vector(block_size, lambda r, c: c)[:channels]
        return tensor[:, :, ::-1] * signs[:, None, None]
    if orientation == "flip_y":
        signs = _sign_vector(block_size, lambda r, c: r)[:channels]
        return tensor[:, ::-1, :] * signs[:, None, None]
    if orientation == "transpose":
        perm = _transpose_permutation(block_size, tensor.shape[0])
        return tensor[perm].transpose(0, 2, 1).copy()
    if orientation == "rot180":
        out = augment_tensor(tensor, "flip_x", block_size)
        return augment_tensor(out, "flip_y", block_size)
    if orientation == "rot90":
        # image rot90 (counter-clockwise, numpy convention) = transpose
        # then flip rows
        out = augment_tensor(tensor, "transpose", block_size)
        return augment_tensor(out, "flip_y", block_size)
    if orientation == "rot270":
        out = augment_tensor(tensor, "transpose", block_size)
        return augment_tensor(out, "flip_x", block_size)
    # antitranspose = transpose of the 180-degree rotation
    out = augment_tensor(tensor, "rot180", block_size)
    return augment_tensor(out, "transpose", block_size)


def augmentation_batch(
    tensors: np.ndarray,
    labels: np.ndarray,
    orientations=("identity", "flip_x", "flip_y", "rot180"),
    block_size: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand a training batch with D4 orientations (labels repeated)."""
    tensors = np.asarray(tensors)
    labels = np.asarray(labels)
    if len(tensors) != len(labels):
        raise ValueError("tensors and labels lengths differ")
    expanded = [
        np.stack([augment_tensor(t, o, block_size) for t in tensors])
        for o in orientations
    ]
    return (
        np.concatenate(expanded, axis=0),
        np.tile(labels, len(orientations)),
    )
