"""Feature extraction pipeline from clips to model-ready tensors.

One :class:`FeatureExtractor` instance fixes the raster resolution and
DCT encoding for a whole experiment so that every subsystem — CNN, GMM,
pattern matcher — sees consistent features for the same clip.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..layout.clip import Clip
from ..nn.runtime import PRECISION_MODES, PrecisionPolicy
from .dct import dct_encode, dct_encode_stack
from .density import density_grid, density_grid_stack

__all__ = ["FeatureExtractor"]


class FeatureExtractor:
    """Clip → feature tensors.

    Parameters
    ----------
    grid:
        Raster resolution in pixels (must be divisible by ``blocks``).
    blocks:
        Block grid of the DCT encoding (12 reproduces the paper lineage).
    coeffs:
        Zigzag DCT coefficients kept per block (channel count of the CNN
        input).  The default keeps the full 8x8 spectrum: with 64 of 64
        coefficients the orthonormal encoding is lossless, which matters
        here because hotspot-ness hinges on few-pixel critical
        dimensions that live in the high-frequency half.
    density_cells:
        Cell grid of the auxiliary density signature.
    precision:
        ``"exact"`` (default) encodes with the bit-exact float64 DCT
        kernel; ``"fast"`` computes the basis matmul in float32 and
        upcasts, trading ~1e-6 relative feature error for speed.  The
        mode is part of :attr:`params_key`, so fast-mode features never
        alias exact cache entries.
    """

    def __init__(
        self,
        grid: int = 96,
        blocks: int = 12,
        coeffs: int = 64,
        density_cells: int = 8,
        precision: str = "exact",
    ) -> None:
        if grid % blocks:
            raise ValueError(f"grid {grid} not divisible by blocks {blocks}")
        if density_cells <= 0:
            raise ValueError(
                f"density_cells must be positive, got {density_cells}"
            )
        if grid % density_cells:
            raise ValueError(
                f"grid {grid} not divisible by density_cells {density_cells}; "
                "the density signature needs whole pixel cells"
            )
        block_size = grid // blocks
        if coeffs > block_size * block_size:
            raise ValueError(
                f"coeffs {coeffs} exceeds block capacity {block_size ** 2}"
            )
        if precision not in PRECISION_MODES:
            raise ValueError(
                f"precision must be one of {PRECISION_MODES}, "
                f"got {precision!r}"
            )
        self.grid = grid
        self.blocks = blocks
        self.coeffs = coeffs
        self.density_cells = density_cells
        self.precision = precision
        self._policy = PrecisionPolicy(precision)

    def with_precision(self, precision: str) -> "FeatureExtractor":
        """This extractor's parameters with another precision mode
        (returns ``self`` when the mode already matches)."""
        if precision == self.precision:
            return self
        return FeatureExtractor(
            grid=self.grid,
            blocks=self.blocks,
            coeffs=self.coeffs,
            density_cells=self.density_cells,
            precision=precision,
        )

    @property
    def tensor_shape(self) -> tuple[int, int, int]:
        """CNN input shape ``(C, H, W)``."""
        return (self.coeffs, self.blocks, self.blocks)

    @property
    def flat_size(self) -> int:
        """Length of one :meth:`flat_features` vector."""
        return int(np.prod(self.tensor_shape)) + self.density_cells**2

    @property
    def params_key(self) -> str:
        """Stable signature of every parameter that shapes the output —
        the extractor half of a content-addressed feature-cache key.

        Exact mode keeps the seed key (existing caches stay valid);
        fast mode appends a suffix because its output bits differ.
        """
        key = f"g{self.grid}b{self.blocks}c{self.coeffs}d{self.density_cells}"
        if self.precision != "exact":
            key += f"p{self.precision}"
        return key

    def raster(self, clip: Clip) -> np.ndarray:
        """Antialiased raster of one clip."""
        return clip.raster(self.grid, antialias=True)

    @contract(returns="f8[N,G,G]")
    def raster_stack(self, clips) -> np.ndarray:
        """Rasters of many clips, stacked into ``(N, grid, grid)``."""
        clips = list(clips)
        if not clips:
            return np.zeros((0, self.grid, self.grid))
        return np.stack([self.raster(clip) for clip in clips])

    @contract(returns="f8[C,B,B]")
    def encode(self, clip: Clip) -> np.ndarray:
        """DCT tensor ``(coeffs, blocks, blocks)`` of one clip."""
        return dct_encode(
            self.raster(clip), self.blocks, self.coeffs, policy=self._policy
        )

    @contract(rasters="f8[N,G,G]", returns="f8[N,C,B,B]")
    def encode_rasters(self, rasters: np.ndarray) -> np.ndarray:
        """DCT tensors of pre-computed rasters (vectorized)."""
        return dct_encode_stack(
            rasters, self.blocks, self.coeffs, policy=self._policy
        )

    @contract(rasters="f8[N,G,G]", tensors="?f8[N,C,B,B]", returns="f8[N,D]")
    def flats_from_rasters(
        self, rasters: np.ndarray, tensors: np.ndarray | None = None
    ) -> np.ndarray:
        """Flat vectors from pre-computed rasters (vectorized).

        Pass ``tensors`` when the DCT encoding of the same rasters is
        already available to avoid recomputing it.
        """
        rasters = np.asarray(rasters)
        if tensors is None:
            tensors = self.encode_rasters(rasters)
        density = density_grid_stack(rasters, self.density_cells)
        return np.concatenate(
            [tensors.reshape(len(rasters), -1), density], axis=1
        )

    @contract(returns="f8[N,C,B,B]")
    def encode_batch(self, clips) -> np.ndarray:
        """DCT tensors for many clips, stacked into ``(N, C, H, W)``."""
        return self.encode_rasters(self.raster_stack(clips))

    @contract(returns="f8[D]")
    def flat_features(self, clip: Clip) -> np.ndarray:
        """Flat vector for distribution modelling (GMM): DCT + density."""
        tensor = self.encode(clip)
        density = density_grid(self.raster(clip), self.density_cells)
        return np.concatenate([tensor.reshape(-1), density])

    @contract(returns="f8[N,D]")
    def flat_batch(self, clips) -> np.ndarray:
        clips = list(clips)
        if not clips:
            return np.zeros((0, self.flat_size))
        return self.flats_from_rasters(self.raster_stack(clips))
