"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build. This shim
lets ``python setup.py develop`` provide the equivalent editable install.
"""

from setuptools import setup

setup()
